"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_stages(capsys) -> None:
    out = run_cli(capsys, "stages", "--n", "5")
    assert "regular" in out and "unidirectional" in out
    assert "broadcasts" in out


def test_partition_with_simulation(capsys) -> None:
    out = run_cli(
        capsys, "partition", "--n", "8", "--m", "3", "--simulate", "--seed", "2"
    )
    assert "correct=True" in out
    assert "violations=0" in out


def test_partition_mesh_packed(capsys) -> None:
    out = run_cli(capsys, "partition", "--n", "8", "--m", "4",
                  "--geometry", "mesh")
    assert "mesh" in out


def test_ggraph_variants(capsys) -> None:
    for algo in ("tc", "lu", "faddeev", "givens"):
        out = run_cli(capsys, "ggraph", "--algorithm", algo, "--n", "5")
        assert "G-nodes" in out


def test_schedule(capsys) -> None:
    out = run_cli(capsys, "schedule", "--n", "8", "--m", "3")
    assert "->" in out


def test_level_render(capsys) -> None:
    out = run_cli(capsys, "level", "--n", "5", "--k", "1")
    assert "level k=1" in out
    assert "D" in out  # the delay column


def test_level_out_of_range() -> None:
    assert main(["level", "--n", "5", "--k", "9"]) == 2


def test_fixed(capsys) -> None:
    out = run_cli(capsys, "fixed", "--n", "6")
    assert "II=6" in out and "correct=True" in out


def test_trace_writes_chrome_json(capsys, tmp_path) -> None:
    import json

    out_file = tmp_path / "trace.json"
    out = run_cli(capsys, "trace", "--n", "6", "--m", "3",
                  "--trace-out", str(out_file))
    assert "stages traced" in out
    doc = json.loads(out_file.read_text())
    events = doc["traceEvents"]
    names = {e["name"] for e in events}
    # Wall-clock pipeline stages and per-cycle simulator events coexist.
    assert {"partition.group", "partition.schedule", "sim.simulate"} <= names
    assert any(e["ph"] == "X" and e["pid"] == 2 for e in events)  # sim fires
    assert any(e["ph"] == "C" for e in events)  # counter tracks
    for ev in events:
        assert {"name", "ph", "pid"} <= set(ev)


def test_stats_prometheus_and_json(capsys) -> None:
    import json

    prom = run_cli(capsys, "stats", "--n", "8", "--m", "3")
    assert "# TYPE repro_sim_makespan_cycles gauge" in prom
    assert "repro_sim_utilization" in prom
    assert "repro_expected_throughput" in prom
    assert "measured vs closed form" in prom

    out = run_cli(capsys, "stats", "--n", "8", "--m", "3",
                  "--format", "json")
    body = out.split("# measured vs closed form")[0]
    doc = json.loads(body)
    assert doc["repro_sim_makespan_cycles"]["type"] == "gauge"


def test_partition_trace_out(capsys, tmp_path) -> None:
    import json

    out_file = tmp_path / "p.json"
    out = run_cli(capsys, "partition", "--n", "8", "--m", "3", "--simulate",
                  "--trace-out", str(out_file))
    assert "correct=True" in out
    assert str(out_file) in out
    doc = json.loads(out_file.read_text())
    assert doc["traceEvents"]


def test_partition_trace_out_requires_simulate() -> None:
    assert main(["partition", "--n", "8", "--m", "3",
                 "--trace-out", "x.json"]) == 2


def test_faults_single_config(capsys) -> None:
    out = run_cli(capsys, "faults", "--config", "linear-n9-m3",
                  "--kinds", "transient")
    assert "fault campaign (seed 0)" in out
    assert "1/1 runs ok" in out


def test_faults_json_report_and_trace(capsys, tmp_path) -> None:
    import json

    report = tmp_path / "faults.json"
    trace = tmp_path / "rec.json"
    out = run_cli(capsys, "faults", "--config", "linear-n9-m3",
                  "--kinds", "permanent", "--format", "json",
                  "--out", str(report), "--trace-out", str(trace))
    assert "1/1 runs ok" in out
    doc = json.loads(report.read_text())
    assert doc["ok"] is True
    assert doc["runs"][0]["repartitions"] == 1
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["ph"] == "X" and e["cat"] == "resilience.repartition"
               for e in events)


def test_faults_usage_errors() -> None:
    assert main(["faults", "--experiments", "--config", "x"]) == 2
    assert main(["faults", "--config", "nope"]) == 2
    assert main(["faults", "--kinds", "bogus"]) == 2


def test_parser_requires_command() -> None:
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_command_rejected() -> None:
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_trace_out_creates_parent_dirs(capsys, tmp_path) -> None:
    import json

    out_file = tmp_path / "new_dir" / "nested" / "t.json"
    out = run_cli(capsys, "trace", "--n", "6", "--m", "3",
                  "--trace-out", str(out_file))
    assert "stages traced" in out
    names = {e["name"] for e in json.loads(out_file.read_text())["traceEvents"]}
    assert "sim.simulate" in names


def test_artefact_writers_create_parent_dirs(capsys, tmp_path) -> None:
    lint_out = tmp_path / "reports" / "lint.json"
    run_cli(capsys, "lint", "--n", "9", "--m", "3",
            "--format", "json", "--out", str(lint_out))
    assert lint_out.exists()

    faults_out = tmp_path / "campaigns" / "f.json"
    run_cli(capsys, "faults", "--config", "linear-n9-m3",
            "--kinds", "transient", "--format", "json",
            "--out", str(faults_out))
    assert faults_out.exists()

    dash_out = tmp_path / "site" / "dash.html"
    run_cli(capsys, "dashboard", "--out", str(dash_out),
            "--n", "6", "--m", "2")
    assert dash_out.exists()


def test_partition_backend_vector(capsys) -> None:
    out = run_cli(capsys, "partition", "--n", "8", "--m", "3", "--simulate",
                  "--backend", "vector", "--seed", "2")
    assert "correct=True" in out
    assert "violations=0" in out


def test_trace_backend_vector_keeps_sim_span(capsys, tmp_path) -> None:
    import json

    out_file = tmp_path / "t.json"
    run_cli(capsys, "trace", "--n", "6", "--m", "3",
            "--backend", "vector", "--trace-out", str(out_file))
    names = {e["name"] for e in json.loads(out_file.read_text())["traceEvents"]}
    # Tracing installs a probe, which forces the reference interpreter.
    assert "sim.simulate" in names


def test_bench_single_experiment(capsys) -> None:
    out = run_cli(capsys, "bench", "F20")
    assert "G-set scheduling policies" in out
    assert "vertical" in out


def test_bench_parallel_vector_matches_reproduce(capsys) -> None:
    seq = run_cli(capsys, "reproduce", "F20", "F07")
    par = run_cli(capsys, "bench", "F20", "F07",
                  "--jobs", "2", "--backend", "vector")
    assert par == seq


def test_bench_unknown_experiment_exits_two() -> None:
    assert main(["bench", "NOPE"]) == 2


def test_faults_parallel_jobs_match_sequential(capsys) -> None:
    seq = run_cli(capsys, "faults", "--config", "linear-n9-m3")
    par_out = run_cli(capsys, "faults", "--config", "linear-n9-m3",
                      "--jobs", "2")
    assert par_out == seq


def test_faults_backend_vector(capsys) -> None:
    out = run_cli(capsys, "faults", "--config", "linear-n9-m3",
                  "--backend", "vector")
    assert "3/3 runs ok" in out


def test_faults_writes_run_ledger(capsys, tmp_path, monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    run_cli(capsys, "faults", "--config", "linear-n9-m3")
    ledgers = list(tmp_path.glob("faults-*.jsonl"))
    assert len(ledgers) == 1

    out = run_cli(capsys, "obs", "list", "--dir", str(tmp_path))
    assert "faults-" in out and "True" in out

    out = run_cli(capsys, "obs", "show", "--dir", str(tmp_path))
    for marker in ("run_start", "lint", "plan_cache", "backend",
                   "fault_inject", "fault_detect", "fault_recover",
                   "checkpoint", "oracle", "run_end"):
        assert marker in out, marker

    out = run_cli(capsys, "obs", "verify", "--dir", str(tmp_path))
    assert "1/1 ledger(s) clean" in out


def test_obs_diff_same_run_identical(capsys, tmp_path, monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    run_cli(capsys, "faults", "--config", "linear-n9-m3")
    run_id = next(tmp_path.glob("*.jsonl")).stem
    out = run_cli(capsys, "obs", "diff", run_id, run_id,
                  "--dir", str(tmp_path))
    assert "identical" in out


def test_obs_show_empty_dir_exits_one(capsys, tmp_path) -> None:
    assert main(["obs", "show", "--dir", str(tmp_path / "void")]) == 1
    err = capsys.readouterr().err
    assert "no ledgers under" in err
    assert "Traceback" not in err


def test_obs_show_missing_run_exits_one(capsys, tmp_path) -> None:
    assert main(["obs", "show", "nope-123", "--dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "cannot read" in err


def test_obs_diff_missing_run_exits_one(capsys, tmp_path) -> None:
    assert main(["obs", "diff", "a-1", "b-2", "--dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert "Traceback" not in err


def test_obs_verify_empty_dir_exits_one(capsys, tmp_path) -> None:
    assert main(["obs", "verify", "--dir", str(tmp_path / "void")]) == 1
    err = capsys.readouterr().err
    assert "no ledgers under" in err


def test_obs_verify_flags_tampered_ledger(capsys, tmp_path,
                                          monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    run_cli(capsys, "faults", "--config", "linear-n9-m3")
    path = next(tmp_path.glob("*.jsonl"))
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")  # drop run_end
    assert main(["obs", "verify", "--dir", str(tmp_path)]) == 1
    err = capsys.readouterr()
    assert "FAIL" in err.out


def test_runlog_disabled_leaves_no_ledger(capsys, tmp_path,
                                          monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RUNLOG", "0")
    run_cli(capsys, "faults", "--config", "linear-n9-m3")
    assert list(tmp_path.glob("*.jsonl")) == []


def test_profile_config_mode(capsys, tmp_path) -> None:
    import json

    out_json = tmp_path / "profile.json"
    out = run_cli(capsys, "profile", "--n", "9", "--m", "3",
                  "--json", "--out", str(out_json))
    assert str(out_json) in out
    doc = json.loads(out_json.read_text())
    assert doc["version"] == 1
    assert doc["kind"] == "repro-profile"
    # Self-times telescope: their sum equals the measured wall time.
    assert doc["self_sum_s"] == pytest.approx(doc["wall_s"], rel=0.05)
    [cp] = doc["critical_paths"]
    assert cp["matches_makespan"] is True
    assert cp["length"] == cp["makespan"]
    assert cp["hotspots"]
    assert doc["config"]["correct"] is True


def test_profile_text_flame_folded_record(capsys, tmp_path) -> None:
    flame = tmp_path / "flame.svg"
    folded = tmp_path / "stacks.folded"
    history = tmp_path / "hist.jsonl"
    out = run_cli(capsys, "profile", "--n", "8", "--m", "3",
                  "--backend", "vector",
                  "--flame-out", str(flame),
                  "--folded-out", str(folded),
                  "--record", str(history))
    assert "phases (top" in out
    assert "critical path [linear-n8-m3]" in out
    svg = flame.read_text()
    assert svg.startswith("<svg") and "http://www.w3.org/2000/svg" in svg
    lines = folded.read_text().splitlines()
    assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
    import json

    rec = json.loads(history.read_text().splitlines()[-1])
    assert rec["exp_id"] == "linear-n8-m3:profile"
    assert "profile_wall_s" in rec["metrics"]


def test_profile_from_run(capsys, tmp_path, monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    run_cli(capsys, "faults", "--config", "linear-n9-m3",
            "--kinds", "transient")
    run_id = next(tmp_path.glob("faults-*.jsonl")).stem
    out = run_cli(capsys, "profile", "--from-run", run_id,
                  "--dir", str(tmp_path))
    assert "campaign.config" in out


def test_profile_usage_errors(tmp_path) -> None:
    assert main(["profile", "--experiment", "F18", "--n", "9"]) == 2
    assert main(["profile", "--experiment", "NOPE"]) == 2
    assert main(["profile", "--from-run", "ghost-1",
                 "--dir", str(tmp_path)]) == 1


def test_dashboard_includes_run_ledger_panel(capsys, tmp_path,
                                             monkeypatch) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    run_cli(capsys, "faults", "--config", "linear-n9-m3")
    out_html = tmp_path / "dash.html"
    run_cli(capsys, "dashboard", "--n", "6", "--m", "2",
            "--out", str(out_html))
    html = out_html.read_text()
    assert "Run ledger (recent runs)" in html
    assert "faults-" in html


# ----------------------------------------------------------------------
# Sparse datasets: the ``closure`` verb and ``bench --dataset``
# ----------------------------------------------------------------------

class TestClosureVerb:
    def test_kron_with_ssc12_check(self, capsys) -> None:
        out = run_cli(capsys, "closure", "--dataset", "kron:scale=5,edges=4",
                      "--check", "ssc12")
        assert "engine: bitpack" in out
        assert "agree=True" in out

    def test_engine_choices_agree(self, capsys) -> None:
        import json

        edges = None
        for engine in ("bitpack", "reference", "ssc1", "ssc2", "ssc12"):
            out = run_cli(capsys, "closure", "--dataset",
                          "kron:scale=4,edges=4,seed=1",
                          "--engine", engine, "--format", "json")
            doc = json.loads(out)
            if edges is None:
                edges = doc["closure_edges"]
            assert doc["closure_edges"] == edges, engine

    def test_edgelist_path_with_remap(self, capsys, tmp_path) -> None:
        p = tmp_path / "g.txt"
        p.write_text("# comment\n10 20\n20 30\n30 10\n")
        out = run_cli(capsys, "closure", "--dataset", str(p), "--remap",
                      "--check", "reference")
        assert "n=3" in out
        # A 3-cycle closes fully: 9 reachable pairs.
        assert "closure: 9 reachable pairs" in out
        assert "agree=True" in out

    def test_bad_spec_exits_two(self, capsys) -> None:
        assert main(["closure", "--dataset", "kron:whee=1"]) == 2
        assert "closure:" in capsys.readouterr().err

    def test_out_of_range_without_remap_exits_two(self, capsys,
                                                  tmp_path) -> None:
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        assert main(["closure", "--dataset", str(p), "--n", "1"]) == 2
        assert "vertex-out-of-range" in capsys.readouterr().err

    def test_out_writes_nested_json(self, capsys, tmp_path) -> None:
        import json

        out_file = tmp_path / "a" / "b" / "closure.json"
        run_cli(capsys, "closure", "--dataset", "kron:scale=4,edges=4",
                "--check", "reference", "--format", "json",
                "--out", str(out_file))
        doc = json.loads(out_file.read_text())
        assert doc["check"]["agree"] is True
        assert doc["dataset"]["n"] == 16

    def test_record_appends_history_and_trajectory(self, capsys,
                                                   tmp_path) -> None:
        import json

        hist = tmp_path / "hist" / "history.jsonl"
        out = run_cli(capsys, "closure", "--dataset",
                      "kron:scale=5,edges=4", "--record", str(hist))
        assert "appended" in out
        rec = json.loads(hist.read_text().splitlines()[-1])
        assert rec["exp_id"].startswith("DS-kron")
        assert rec["n"] == 32  # dimensions stamped, never null
        assert rec["metrics"]["wall_time_s"] > 0
        # The roll-up lands next to a custom history file, not at the
        # repo root (and certainly not at filesystem root).
        assert (tmp_path / "hist" / "BENCH_PERF.json").exists()

    def test_emits_run_ledger(self, capsys, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
        run_cli(capsys, "closure", "--dataset", "kron:scale=4,edges=4",
                "--check", "ssc2")
        out = run_cli(capsys, "obs", "show", "--dir", str(tmp_path))
        for marker in ("dataset", "closure", "closure_check"):
            assert marker in out, marker
        out = run_cli(capsys, "obs", "verify", "--dir", str(tmp_path))
        assert "1/1 ledger(s) clean" in out


class TestBenchDataset:
    def test_small_kron_runs_all_engines_and_arrays(self, capsys) -> None:
        out = run_cli(capsys, "bench", "--dataset", "kron:scale=3,edges=3")
        for engine in ("bitpack", "reference", "ssc1", "ssc2", "ssc12",
                       "array-reference", "array-vector"):
            assert engine in out, engine
        assert "False" not in out  # every engine agrees with the oracle

    def test_record_stamps_dimensions(self, capsys, tmp_path) -> None:
        import json

        hist = tmp_path / "h" / "history.jsonl"
        run_cli(capsys, "bench", "--dataset", "kron:scale=3,edges=3",
                "--record", str(hist))
        rec = json.loads(hist.read_text().splitlines()[-1])
        assert rec["n"] == 8 and rec["m"] is not None
        assert "ssc12_wall_s" in rec["metrics"]

    def test_bad_spec_exits_two(self, capsys) -> None:
        assert main(["bench", "--dataset", "kron:"]) == 2


def test_new_artefact_writers_create_nested_dirs(capsys, tmp_path) -> None:
    """Satellite sweep: every ``*-out`` flag must mkdir its parents."""
    import json

    summary = tmp_path / "f" / "deep" / "summary.json"
    run_cli(capsys, "faults", "--config", "linear-n9-m3",
            "--kinds", "transient", "--summary-out", str(summary))
    assert json.loads(summary.read_text())["ok"] is True

    folded = tmp_path / "p" / "deep" / "stacks.folded"
    flame = tmp_path / "p" / "deeper" / "flame.svg"
    run_cli(capsys, "profile", "--n", "6", "--m", "3",
            "--folded-out", str(folded), "--flame-out", str(flame))
    assert folded.read_text().strip()
    assert flame.read_text().startswith("<svg")

    baseline = tmp_path / "l" / "deep" / "baseline.json"
    run_cli(capsys, "lint", "--n", "9", "--m", "3",
            "--baseline", str(baseline), "--update-baseline")
    assert baseline.exists()
    diff = tmp_path / "l" / "deeper" / "diff.json"
    run_cli(capsys, "lint", "--n", "9", "--m", "3",
            "--baseline", str(baseline), "--baseline-diff-out", str(diff))
    assert json.loads(diff.read_text())
