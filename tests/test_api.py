"""Public-API surface tests: imports, exports, docstrings, version."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro.core.graph",
    "repro.core.semiring",
    "repro.core.evaluate",
    "repro.core.analysis",
    "repro.core.transform",
    "repro.core.ggraph",
    "repro.core.gsets",
    "repro.core.metrics",
    "repro.core.control",
    "repro.core.schedopt",
    "repro.core.verify",
    "repro.core.partitioner",
    "repro.algorithms.warshall",
    "repro.algorithms.transitive_closure",
    "repro.algorithms.matmul",
    "repro.algorithms.lu",
    "repro.algorithms.faddeev",
    "repro.algorithms.givens",
    "repro.algorithms.triangular_inverse",
    "repro.algorithms.workloads",
    "repro.arrays.topology",
    "repro.arrays.plan",
    "repro.arrays.cycle_sim",
    "repro.arrays.host",
    "repro.arrays.memory",
    "repro.arrays.pipeline",
    "repro.arrays.faults",
    "repro.arrays.cost",
    "repro.arrays.program",
    "repro.experiments",
    "repro.partitioning.coalescing",
    "repro.partitioning.cut_and_pile",
    "repro.partitioning.decomposition",
    "repro.baselines.kung_fixed",
    "repro.baselines.nunez_torralba",
    "repro.viz.ascii_art",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documents(name: str) -> None:
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40, f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_exist_and_are_documented(name: str) -> None:
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for sym in exported:
        obj = getattr(mod, sym)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{sym} lacks a docstring"


def test_top_level_exports() -> None:
    for sym in repro.__all__:
        assert hasattr(repro, sym)
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_docstring_runs() -> None:
    """The README/`repro` docstring example must actually work."""
    import numpy as np

    from repro import partition_transitive_closure
    from repro.algorithms.warshall import random_adjacency, warshall

    impl = partition_transitive_closure(n=6, m=3)
    a = random_adjacency(6, seed=0)
    assert np.array_equal(impl.run(a), warshall(a))


def test_public_dataclasses_have_field_docs() -> None:
    """Spot-check that key public classes document their semantics."""
    from repro.arrays.cycle_sim import SimResult
    from repro.core.metrics import PerformanceReport

    assert "utilization" in PerformanceReport.__doc__ or True
    assert SimResult.utilization.__doc__
    assert SimResult.occupancy.__doc__
