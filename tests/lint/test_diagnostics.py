"""Tests for the shared diagnostic model and its renderers."""

from __future__ import annotations

import json

from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    RULE_CATALOG,
    SCHEMA_VERSION,
    Severity,
    all_passes,
)
from repro.lint.diagnostics import SARIF_VERSION


def _diag(code: str = "RL101", sev: Severity = Severity.ERROR) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=sev,
        message="value is broadcast",
        hint="serialize it",
        nodes=(("cell", 0, 1, 2),),
        cells=(3,),
    )


def test_severity_ordering() -> None:
    assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank
    assert Severity.ERROR.sarif_level == "error"
    assert Severity.INFO.sarif_level == "note"


def test_diagnostic_location_and_dict() -> None:
    d = _diag()
    loc = d.location()
    assert "node (cell,0,1,2)" in loc
    assert "cell 3" in loc
    doc = d.to_dict()
    assert doc["code"] == "RL101"
    assert doc["severity"] == "error"
    assert doc["nodes"] == ["(cell,0,1,2)"]
    json.dumps(doc)  # JSON-safe


def test_report_counts_and_by_code() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(), _diag("RL202", Severity.WARNING)])
    assert rep.counts() == {"error": 1, "warning": 1, "info": 0}
    assert rep.codes() == {"RL101", "RL202"}
    assert len(rep.by_code("RL202")) == 1
    assert not rep.ok
    assert len(rep) == 2


def test_report_text_rendering() -> None:
    rep = LintReport(target="design-x", passes_run=("graph.broadcast",))
    rep.extend([_diag()])
    text = rep.to_text()
    assert "lint: design-x" in text
    assert "RL101" in text and "hint:" in text
    assert "1 error(s)" in text


def test_report_json_is_versioned() -> None:
    rep = LintReport(target="t")
    doc = json.loads(rep.to_json())
    assert doc["version"] == SCHEMA_VERSION
    assert doc["ok"] is True
    assert doc["findings"] == []


def test_report_sarif_structure() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(), _diag("RL202", Severity.WARNING)])
    doc = rep.to_sarif()
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rules == set(RULE_CATALOG)
    assert [r["ruleId"] for r in run["results"]] == ["RL101", "RL202"]
    levels = {r["level"] for r in run["results"]}
    assert levels == {"error", "warning"}
    # the error's logical locations carry the node and cell ids
    locs = run["results"][0]["locations"][0]["logicalLocations"]
    assert {"name": "(cell,0,1,2)", "kind": "member"} in locs
    json.dumps(doc)


def test_diagnostic_suggestion_round_trips() -> None:
    d = Diagnostic(
        code="RL501",
        severity=Severity.ERROR,
        message="dropped slot",
        suggestion="recompile with compile_plan()",
    )
    assert d.to_dict()["suggestion"] == "recompile with compile_plan()"
    rep = LintReport(target="t")
    rep.extend([d])
    assert "fix: recompile with compile_plan()" in rep.to_text()
    (res,) = rep.to_sarif()["runs"][0]["results"]
    assert res["fixes"] == [
        {"description": {"text": "recompile with compile_plan()"}}
    ]


def test_report_dedupes_identical_diagnostics() -> None:
    # Preflight and an explicit CLI lint in one process can both append
    # the same finding; every renderer must show it once (schema v2).
    rep = LintReport(target="t")
    rep.extend([_diag(), _diag(), _diag("RL202", Severity.WARNING)])
    assert len(rep.unique_diagnostics()) == 2
    doc = json.loads(rep.to_json())
    assert len(doc["findings"]) == 2
    assert doc["summary"] == {"error": 1, "warning": 1, "info": 0}
    sarif = rep.to_sarif()
    assert len(sarif["runs"][0]["results"]) == 2
    assert SCHEMA_VERSION >= 2


def test_sarif_schema_shape_for_code_scanning() -> None:
    """The CI artifact must be consumable by GitHub code scanning."""
    rep = LintReport(target="design-x", passes_run=("graph.broadcast",))
    rep.extend([
        _diag(),
        Diagnostic(
            code="RL605",
            severity=Severity.WARNING,
            message="cells idle",
            suggestion="choose m closer to a divisor",
        ),
    ])
    doc = rep.to_sarif()
    assert doc["version"] == SARIF_VERSION
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] and driver["version"]
    rules_by_id = {r["id"]: r for r in driver["rules"]}
    assert set(rules_by_id) == set(RULE_CATALOG)
    for rule in rules_by_id.values():
        assert rule["name"] and " " not in rule["name"]
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["help"]["text"]
        assert rule["helpUri"].endswith(f"#{rule['id'].lower()}")
    for res in run["results"]:
        assert res["ruleId"] in rules_by_id
        assert res["level"] in {"note", "warning", "error"}
        assert res["message"]["text"]
        for fix in res.get("fixes", ()):
            assert fix["description"]["text"]
    json.dumps(doc)


def test_lint_error_summarises_first_findings() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(f"RL10{i}") for i in range(1, 6)])
    err = LintError(rep)
    assert err.report is rep
    assert "5 error(s)" in str(err)
    assert "(+2 more)" in str(err)


def test_catalog_covers_every_registered_code() -> None:
    for lp in all_passes():
        for code in lp.codes:
            assert code in RULE_CATALOG, f"{lp.name} emits uncatalogued {code}"
    assert "RL001" in RULE_CATALOG  # the runner's crash code
    for info in RULE_CATALOG.values():
        assert info.summary and info.invariant and info.hint
