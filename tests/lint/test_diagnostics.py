"""Tests for the shared diagnostic model and its renderers."""

from __future__ import annotations

import json

from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    RULE_CATALOG,
    SCHEMA_VERSION,
    Severity,
    all_passes,
)
from repro.lint.diagnostics import SARIF_VERSION


def _diag(code: str = "RL101", sev: Severity = Severity.ERROR) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=sev,
        message="value is broadcast",
        hint="serialize it",
        nodes=(("cell", 0, 1, 2),),
        cells=(3,),
    )


def test_severity_ordering() -> None:
    assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank
    assert Severity.ERROR.sarif_level == "error"
    assert Severity.INFO.sarif_level == "note"


def test_diagnostic_location_and_dict() -> None:
    d = _diag()
    loc = d.location()
    assert "node (cell,0,1,2)" in loc
    assert "cell 3" in loc
    doc = d.to_dict()
    assert doc["code"] == "RL101"
    assert doc["severity"] == "error"
    assert doc["nodes"] == ["(cell,0,1,2)"]
    json.dumps(doc)  # JSON-safe


def test_report_counts_and_by_code() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(), _diag("RL202", Severity.WARNING)])
    assert rep.counts() == {"error": 1, "warning": 1, "info": 0}
    assert rep.codes() == {"RL101", "RL202"}
    assert len(rep.by_code("RL202")) == 1
    assert not rep.ok
    assert len(rep) == 2


def test_report_text_rendering() -> None:
    rep = LintReport(target="design-x", passes_run=("graph.broadcast",))
    rep.extend([_diag()])
    text = rep.to_text()
    assert "lint: design-x" in text
    assert "RL101" in text and "hint:" in text
    assert "1 error(s)" in text


def test_report_json_is_versioned() -> None:
    rep = LintReport(target="t")
    doc = json.loads(rep.to_json())
    assert doc["version"] == SCHEMA_VERSION
    assert doc["ok"] is True
    assert doc["findings"] == []


def test_report_sarif_structure() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(), _diag("RL202", Severity.WARNING)])
    doc = rep.to_sarif()
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rules == set(RULE_CATALOG)
    assert [r["ruleId"] for r in run["results"]] == ["RL101", "RL202"]
    levels = {r["level"] for r in run["results"]}
    assert levels == {"error", "warning"}
    # the error's logical locations carry the node and cell ids
    locs = run["results"][0]["locations"][0]["logicalLocations"]
    assert {"name": "(cell,0,1,2)", "kind": "member"} in locs
    json.dumps(doc)


def test_lint_error_summarises_first_findings() -> None:
    rep = LintReport(target="t")
    rep.extend([_diag(f"RL10{i}") for i in range(1, 6)])
    err = LintError(rep)
    assert err.report is rep
    assert "5 error(s)" in str(err)
    assert "(+2 more)" in str(err)


def test_catalog_covers_every_registered_code() -> None:
    for lp in all_passes():
        for code in lp.codes:
            assert code in RULE_CATALOG, f"{lp.name} emits uncatalogued {code}"
    assert "RL001" in RULE_CATALOG  # the runner's crash code
    for info in RULE_CATALOG.values():
        assert info.summary and info.invariant and info.hint
