"""RL402 mutation corpus: sound recovery policies lint clean, broken
ones (unbounded backoff, unreachable quarantine threshold, free or
negative-cost degradation, nonsense knobs) are caught before the first
G-set of a resilient run executes."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.lint import LintTarget, run_lint
from repro.resilience import ADAPTIVE_POLICY, RecoveryPolicy


def lint(policy: RecoveryPolicy):
    return run_lint(
        LintTarget(description="recovery policy", policy=policy),
        record_metrics=False,
    )


def mutate(**overrides) -> RecoveryPolicy:
    return dataclasses.replace(RecoveryPolicy(), **overrides)


def test_default_policy_is_clean() -> None:
    report = lint(RecoveryPolicy())
    assert report.ok
    assert "RL402" not in report.codes()


def test_adaptive_policy_is_clean() -> None:
    """The regime campaigns' shipped policy must pass its own preflight."""
    report = lint(ADAPTIVE_POLICY)
    assert report.ok


def test_policy_target_runs_only_the_policy_pass() -> None:
    report = lint(RecoveryPolicy())
    assert report.passes_run == ("recovery.policy-sound",)


@pytest.mark.parametrize(
    "knob",
    [
        "max_retries", "backoff_cycles", "backoff_cap_cycles",
        "jitter_cycles", "repartition_cycles", "quarantine_strikes",
    ],
)
def test_negative_knobs_are_errors(knob) -> None:
    report = lint(mutate(**{knob: -1}))
    assert not report.ok
    assert any(knob in d.message for d in report.errors)


def test_unknown_backoff_discipline() -> None:
    report = lint(mutate(backoff="fibonacci"))
    assert not report.ok
    assert any("backoff discipline" in d.message for d in report.errors)


def test_exponential_cap_below_base_is_unbounded() -> None:
    report = lint(
        mutate(backoff="exponential", backoff_cycles=8, backoff_cap_cycles=2)
    )
    assert not report.ok
    assert any("not bounded" in d.message for d in report.errors)


def test_linear_backoff_ignores_the_cap() -> None:
    """The cap only constrains exponential growth."""
    report = lint(
        mutate(backoff="linear", backoff_cycles=8, backoff_cap_cycles=2)
    )
    assert report.ok


def test_zero_permanent_threshold() -> None:
    report = lint(mutate(permanent_threshold=0))
    assert not report.ok
    assert any("permanent_threshold" in d.message for d in report.errors)


def test_quarantine_threshold_beyond_attempt_budget() -> None:
    report = lint(mutate(max_retries=2, quarantine_strikes=4))
    assert not report.ok
    assert any("escalation ladder" in d.message for d in report.errors)


def test_quarantine_threshold_at_attempt_budget_is_clean() -> None:
    report = lint(mutate(max_retries=2, quarantine_strikes=3))
    assert report.ok


def test_free_degradation_tier() -> None:
    report = lint(mutate(degrade=True, degrade_cycles_per_node=0))
    assert not report.ok
    assert any("degrade_cycles_per_node" in d.message for d in report.errors)


def test_degrade_cost_unchecked_when_tier_disabled() -> None:
    report = lint(mutate(degrade=False, degrade_cycles_per_node=0))
    assert report.ok


@pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
def test_signature_sample_rate_out_of_range(rate) -> None:
    report = lint(mutate(signature_sample_rate=rate))
    assert not report.ok
    assert any("signature_sample_rate" in d.message for d in report.errors)


def test_runtime_preflight_rejects_unsound_policy() -> None:
    """run_resilient gates on RL402 before the first G-set executes."""
    from repro.core.partitioner import partition_transitive_closure
    from repro.lint import LintError
    from repro.resilience import run_resilient_closure

    impl = partition_transitive_closure(n=6, m=2)
    a = np.eye(6, dtype=np.int64)
    with pytest.raises(LintError) as ei:
        run_resilient_closure(
            impl, a,
            policy=mutate(max_retries=1, quarantine_strikes=5),
            record_metrics=False,
        )
    assert "RL402" in ei.value.report.codes()


def test_rl402_in_catalogue_and_registry() -> None:
    from repro.lint import all_passes
    from repro.lint.diagnostics import RULE_CATALOG

    assert "RL402" in RULE_CATALOG
    (lp,) = [p for p in all_passes() if p.name == "recovery.policy-sound"]
    assert lp.codes == ("RL402",)
    assert lp.requires == ("policy",)


def test_multiple_defects_all_reported() -> None:
    report = lint(
        mutate(
            max_retries=-1,
            backoff="exponential",
            backoff_cycles=8,
            backoff_cap_cycles=2,
            permanent_threshold=0,
        )
    )
    assert len(report.errors) >= 3
