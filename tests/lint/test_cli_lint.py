"""Tests for the ``repro lint`` CLI verb: exit codes, JSON schema, SARIF."""

from __future__ import annotations

import json

from repro.cli import main
from repro.lint import SCHEMA_VERSION


def test_lint_text_clean_design_exits_zero(capsys) -> None:
    assert main(["lint", "--n", "9", "--m", "3"]) == 0
    out = capsys.readouterr().out
    assert "lint: tc-n9-m3-linear-vertical" in out
    assert "0 error(s)" in out


def test_lint_json_document_schema(tmp_path, capsys) -> None:
    out_file = tmp_path / "lint.json"
    assert main([
        "lint", "--n", "9", "--m", "3", "--format", "json",
        "--out", str(out_file),
    ]) == 0
    assert str(out_file) in capsys.readouterr().out
    doc = json.loads(out_file.read_text())
    assert doc["version"] == SCHEMA_VERSION
    assert doc["ok"] is True
    (report,) = doc["reports"].values()
    assert report["version"] == SCHEMA_VERSION
    assert {"summary", "ok", "passes_run", "findings"} <= set(report)


def test_lint_json_to_stdout(capsys) -> None:
    assert main(["lint", "--config", "linear-n9-m3", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == SCHEMA_VERSION
    assert set(doc["reports"]) == {"linear-n9-m3"}


def test_lint_unknown_config_exits_two(capsys) -> None:
    assert main(["lint", "--config", "does-not-exist"]) == 2
    assert "unknown lint config" in capsys.readouterr().err


def test_lint_conflicting_flags_exit_two(capsys) -> None:
    assert main(["lint", "--experiments", "--config", "linear-n9-m3"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_lint_sarif_validity_smoke(tmp_path, capsys) -> None:
    out_file = tmp_path / "lint.sarif"
    # mesh-n8-m4 carries a warning, so `results` is non-empty while the
    # exit code stays 0 (only error findings gate).
    assert main([
        "lint", "--config", "mesh-n8-m4", "--format", "sarif",
        "--out", str(out_file),
    ]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"RL101", "RL201", "RL304"} <= rules
    assert run["results"], "mesh config should report its RL304 warning"
    for res in run["results"]:
        assert res["ruleId"] in rules
        assert res["level"] in {"note", "warning", "error"}
        assert res["message"]["text"]


def test_lint_experiments_sweeps_all_configs(tmp_path, capsys) -> None:
    out_file = tmp_path / "all.sarif"
    assert main([
        "lint", "--experiments", "--format", "sarif", "--out", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "7 design(s)" in out
    doc = json.loads(out_file.read_text())
    assert len(doc["runs"]) == 7  # one SARIF run per shipped design


def test_lint_planner_runs_the_plan_and_cost_tiers(capsys) -> None:
    assert main([
        "lint", "--config", "linear-n9-m3", "--planner",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    report = doc["reports"]["linear-n9-m3"]
    run = set(report["passes_run"])
    assert {"plan.coverage", "plan.causality", "cost.makespan"} <= run
    assert report["ok"] is True


def test_lint_planner_flags_the_fixed_array_utilization(capsys) -> None:
    assert main(["lint", "--config", "fixed-n9", "--planner"]) == 0
    out = capsys.readouterr().out
    assert "RL605" in out
    assert "fix:" in out  # the suggestion renders in text output


def test_lint_baseline_update_and_suppress_cycle(tmp_path, capsys) -> None:
    baseline = tmp_path / "bl.json"
    assert main([
        "lint", "--config", "mesh-n8-m4",
        "--baseline", str(baseline), "--update-baseline",
    ]) == 0
    assert "baseline: wrote 1 accepted finding(s)" in (
        capsys.readouterr().out
    )
    diff_out = tmp_path / "diff.json"
    assert main([
        "lint", "--config", "mesh-n8-m4",
        "--baseline", str(baseline),
        "--baseline-diff-out", str(diff_out),
    ]) == 0
    out = capsys.readouterr().out
    assert "RL304" not in out  # suppressed by the baseline
    assert "1 suppressed, 0 new" in out
    diff = json.loads(diff_out.read_text())
    assert diff["new"] == [] and len(diff["suppressed"]) == 1


def test_lint_baseline_usage_errors(tmp_path, capsys) -> None:
    assert main(["lint", "--update-baseline"]) == 2
    assert "--update-baseline needs --baseline" in (
        capsys.readouterr().err
    )
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"tool": "other"}))
    assert main([
        "lint", "--config", "linear-n9-m3", "--baseline", str(bad),
    ]) == 2
    assert "not a repro-lint baseline" in capsys.readouterr().err
    assert main([
        "lint", "--config", "linear-n9-m3",
        "--baseline-diff-out", str(tmp_path / "d.json"),
    ]) == 2


def test_lint_from_run_lints_the_recorded_plan(
    tmp_path, capsys, monkeypatch
) -> None:
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path))
    from repro.arrays.vector_compile import clear_compiled_cache
    from repro.obs import runlog

    clear_compiled_cache()
    assert main([
        "partition", "--n", "6", "--m", "3", "--simulate",
        "--backend", "vector",
    ]) == 0
    capsys.readouterr()
    summaries = runlog.list_runs(str(tmp_path))
    run_id = summaries[0]["run"]
    assert main([
        "lint", "--from-run", run_id, "--dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert f"run {run_id}" in out
    assert "plan fingerprint matches the run ledger" in out


def test_lint_from_run_missing_ledger_exits_one(tmp_path, capsys) -> None:
    assert main([
        "lint", "--from-run", "nope", "--dir", str(tmp_path),
    ]) == 1
    assert "no run ledger" in capsys.readouterr().err


def test_lint_from_run_conflicts_with_config(capsys) -> None:
    assert main([
        "lint", "--from-run", "x", "--config", "linear-n9-m3",
    ]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_lint_exit_one_on_error_findings(monkeypatch) -> None:
    import repro.lint as lint_pkg
    from repro.lint import Diagnostic, LintReport, Severity

    bad = LintReport(target="broken")
    bad.extend([
        Diagnostic(code="RL105", severity=Severity.ERROR, message="cycle")
    ])
    monkeypatch.setattr(
        lint_pkg,
        "lint_shipped_configs",
        lambda planner=False: {"broken": bad},
    )
    assert main(["lint", "--experiments"]) == 1
