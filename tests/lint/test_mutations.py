"""Mutation corpus: every documented RLxxx code fires on its seeded defect.

Each test takes a clean, shipped-quality design, applies one targeted
mutation (the defect class the code documents in
``docs/static-analysis.md``), and asserts the checker reports that code.
The companion tests prove the converse — every shipped configuration
lints with zero error-severity findings (the checker's standing
zero-false-positive contract).
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

import pytest

from repro.algorithms.transitive_closure import (
    tc_pipelined,
    tc_pruned,
    tc_regular,
    tc_unidirectional,
)
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.partitioner import partition_transitive_closure
from repro.lint import (
    SHIPPED_CONFIGS,
    LintTarget,
    Severity,
    lint_config,
    lint_graph,
    lint_shipped_configs,
    run_lint,
)
from repro.lint.passes_array import _memory_events


@pytest.fixture()
def impl():
    """A fresh clean implementation per test (mutations edit in place)."""
    return partition_transitive_closure(n=9, m=3)


# ----------------------------------------------------------------------
# RL1xx — graph mutations
# ----------------------------------------------------------------------
def test_rl101_residual_broadcast() -> None:
    # tc_pruned predates the Fig. 12 pipelining step: broadcasts remain.
    report = lint_graph(tc_pruned(6))
    assert "RL101" in report.codes()
    assert not report.ok


def test_rl102_bidirectional_flow() -> None:
    # tc_pipelined predates the Fig. 13 flips: rows flow both ways.
    report = lint_graph(tc_pipelined(6))
    assert "RL102" in report.codes()


def test_rl103_unregularized_grouping_has_long_gedges() -> None:
    dg = tc_unidirectional(7)
    report = run_lint(
        LintTarget(
            description="grouping before Fig. 15c regularization",
            dg=dg,
            gg=GGraph(dg, group_by_columns),
        )
    )
    assert "RL103" in report.codes()


def test_rl103_clean_after_regularization() -> None:
    dg = tc_regular(7)
    report = run_lint(
        LintTarget(
            description="Fig. 17 grouping",
            dg=dg,
            gg=GGraph(dg, group_by_columns),
        )
    )
    assert "RL103" not in report.codes()


def test_rl104_deleted_delay_node() -> None:
    dg = tc_regular(6)
    dg.g.remove_node(("dly", 0, 0))  # consumers now dangle
    report = lint_graph(dg)
    assert "RL104" in report.codes()
    assert any(d.severity is Severity.ERROR for d in report.by_code("RL104"))


def test_rl105_dependence_cycle() -> None:
    dg = tc_regular(5)
    dg.g.add_edge(("cell", 4, 2, 2), ("cell", 0, 1, 1))  # back edge
    report = lint_graph(dg)
    assert "RL105" in report.codes()
    assert not report.ok


# ----------------------------------------------------------------------
# RL2xx — schedule mutations
# ----------------------------------------------------------------------
def test_rl201_pile_order_causality(impl) -> None:
    t = LintTarget.from_implementation(impl, build_exec_plan=False)
    t = dataclasses.replace(t, order=list(reversed(t.order)))
    report = run_lint(t)
    assert "RL201" in report.codes()
    assert not report.ok


def test_rl202_unbalanced_gset_times(impl) -> None:
    s = next(s for s in impl.plan.gsets if len(s.gids) >= 2)
    impl.gg.gnodes[s.gids[0]].comp_time += 1
    report = run_lint(LintTarget.from_implementation(impl, build_exec_plan=False))
    assert "RL202" in report.codes()
    assert all(d.severity is Severity.WARNING for d in report.by_code("RL202"))
    assert report.ok  # time mixing costs utilization, it is not illegal


def test_rl203_duplicate_cell_in_gset(impl) -> None:
    plan = impl.plan
    s0 = next(s for s in plan.gsets if len(s.cells) >= 2)
    mutated = dataclasses.replace(s0, cells=(s0.cells[1],) + s0.cells[1:])
    gsets = tuple(mutated if s is s0 else s for s in plan.gsets)
    plan2 = dataclasses.replace(plan, gsets=gsets)
    report = run_lint(LintTarget(description="dup cell", plan=plan2))
    assert "RL203" in report.codes()
    assert not report.ok


def test_rl204_truncated_pile_order(impl) -> None:
    t = LintTarget.from_implementation(impl, build_exec_plan=False)
    t = dataclasses.replace(t, order=list(t.order)[:-1])
    report = run_lint(t)
    assert "RL204" in report.codes()
    assert "missing" in report.by_code("RL204")[0].message


# ----------------------------------------------------------------------
# RL3xx — array mutations
# ----------------------------------------------------------------------
def test_rl301_fire_on_missing_cell(impl) -> None:
    t = LintTarget.from_implementation(impl)
    nid = next(iter(t.exec_plan.fires))
    _, cyc = t.exec_plan.fires[nid]
    t.exec_plan.fires[nid] = (99, cyc)  # the linear array has cells 0..2
    report = run_lint(t)
    assert "RL301" in report.codes()
    assert not report.ok


def test_rl302_memory_tap_write_collision() -> None:
    # Needs a topology with shared taps: the 3x3 mesh routes columns
    # 0 and 1 of each row through one ("L", row) connection.
    mesh = partition_transitive_closure(n=9, m=9, geometry="mesh")
    t = LintTarget.from_implementation(mesh)
    before = run_lint(t)
    writes, _ = _memory_events(t)
    by_port: dict = {}
    for ref, port, cyc, pcell in writes:
        by_port.setdefault(port, []).append((cyc, pcell, ref))
    # Earliest sole-writer slot on a shared port, plus a write from a
    # different cell on the same port that we can retime into it.
    candidates = []
    for port, evs in by_port.items():
        if len({pc for _, pc, _ in evs}) < 2:
            continue
        writers_at = {}
        for cyc, pc, _ in evs:
            writers_at.setdefault(cyc, set()).add(pc)
        for cyc, pc, _ in evs:
            if writers_at[cyc] == {pc}:
                other = next((e for e in evs if e[1] != pc), None)
                if other is not None:
                    candidates.append((cyc, port, other))
    assert candidates, "mesh design offers no shared-tap slot to collide"
    cyc, port, (_, _, oref) = min(candidates)
    src = oref[0]
    ocell, _ = t.exec_plan.fires[src]
    t.exec_plan.fires[src] = (ocell, cyc - 1)  # its write now lands at cyc
    after = run_lint(t)
    marker = f"in cycle {cyc} ("
    assert any(marker in d.message for d in after.by_code("RL302"))
    assert not any(marker in d.message for d in before.by_code("RL302"))
    assert all(d.severity is Severity.WARNING for d in after.by_code("RL302"))


def test_rl303_memory_connection_bound(impl) -> None:
    t = LintTarget.from_implementation(impl)
    t.exec_plan.topology = dataclasses.replace(
        t.exec_plan.topology, memory_ports=2  # the paper gives m+1 = 4
    )
    report = run_lint(t)
    assert "RL303" in report.codes()
    assert not report.ok


def test_rl304_io_bound_exceeded() -> None:
    impl = partition_transitive_closure(n=12, m=4)
    t = LintTarget.from_implementation(
        impl, io_bound=Fraction(1, 50), build_exec_plan=False
    )
    report = run_lint(t)
    assert "RL304" in report.codes()
    assert report.ok  # bandwidth overruns are warnings, not errors


# ----------------------------------------------------------------------
# The converse: shipped designs are clean
# ----------------------------------------------------------------------
def test_shipped_configs_have_zero_errors() -> None:
    reports = lint_shipped_configs()
    assert set(reports) == {c.name for c in SHIPPED_CONFIGS}
    for name, report in reports.items():
        assert report.ok, f"{name}: {[d.message for d in report.errors]}"


def test_reference_configs_fully_clean() -> None:
    # The paper's own design points produce not even a warning.
    for name in ("linear-n12-m4", "linear-n9-m3", "fixed-n9"):
        report = lint_config(name)
        assert len(report) == 0, (name, [d.message for d in report])
