"""Lint baselines: build/roundtrip, suppression, staleness, error gating."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    apply_baseline,
    build_baseline,
    diff_baseline,
    finding_key,
    load_baseline,
    save_baseline,
)
from repro.lint.baseline import BASELINE_VERSION


def _warn(code: str = "RL304", message: str = "bunching") -> Diagnostic:
    return Diagnostic(code=code, severity=Severity.WARNING, message=message)


def _err(code: str = "RL201", message: str = "causality") -> Diagnostic:
    return Diagnostic(code=code, severity=Severity.ERROR, message=message)


def _reports(*diags: Diagnostic, target: str = "cfg") -> dict:
    return {target: LintReport(target=target, diagnostics=list(diags))}


def test_build_save_load_roundtrip(tmp_path) -> None:
    reports = _reports(_warn(), _err())
    doc = build_baseline(reports)
    assert doc["version"] == BASELINE_VERSION
    assert doc["tool"] == "repro-lint"
    # Only the warning is accepted debt; the error is never baselined.
    assert len(doc["findings"]) == 1
    (entry,) = doc["findings"].values()
    assert entry["code"] == "RL304" and entry["severity"] == "warning"
    path = tmp_path / "lint-baseline.json"
    save_baseline(path, doc)
    assert load_baseline(path) == doc
    assert path.read_text().endswith("\n")


def test_load_rejects_foreign_and_versioned_files(tmp_path) -> None:
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"tool": "other", "version": 1}))
    with pytest.raises(ValueError, match="not a repro-lint baseline"):
        load_baseline(path)
    path.write_text(
        json.dumps({"tool": "repro-lint", "version": 99, "findings": {}})
    )
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)
    path.write_text(json.dumps({"tool": "repro-lint", "version": 1}))
    with pytest.raises(ValueError, match="findings"):
        load_baseline(path)


def test_diff_splits_new_suppressed_stale() -> None:
    accepted = _warn("RL304", "accepted")
    baseline = build_baseline(_reports(accepted, _warn("RL303", "paid")))
    now = _reports(accepted, _warn("RL304", "brand new"))
    diff = diff_baseline(now, baseline)
    assert [d.message for _t, d in diff.suppressed] == ["accepted"]
    assert [d.message for _t, d in diff.new] == ["brand new"]
    assert len(diff.stale) == 1  # "paid" debt no longer fires
    assert diff.new_errors == []
    assert "1 suppressed, 1 new (0 error(s)), 1 stale entry" in (
        diff.summary()
    )


def test_errors_are_never_suppressed() -> None:
    # Even a baseline entry hand-forged for an error does not suppress.
    err = _err()
    baseline = build_baseline(_reports(err, _warn()))
    baseline["findings"][finding_key("cfg", err)] = {
        "target": "cfg",
        "code": err.code,
        "severity": "error",
        "message": err.message,
    }
    diff = diff_baseline(_reports(err, _warn()), baseline)
    assert diff.new_errors == [("cfg", err)]


def test_identity_is_conservative() -> None:
    baseline = build_baseline(_reports(_warn(message="old text")))
    diff = diff_baseline(_reports(_warn(message="new text")), baseline)
    # Editing the message invalidates the suppression.
    assert len(diff.new) == 1 and len(diff.stale) == 1


def test_apply_baseline_strips_suppressed_in_place() -> None:
    accepted = _warn()
    reports = _reports(accepted, _err())
    baseline = build_baseline(_reports(accepted))
    diff = apply_baseline(reports, baseline)
    assert [d.severity for d in reports["cfg"].diagnostics] == [
        Severity.ERROR
    ]
    assert len(diff.suppressed) == 1
    assert diff.to_dict()["suppressed"][0]["code"] == "RL304"


def test_diff_to_dict_is_json_serializable() -> None:
    baseline = build_baseline(_reports(_warn()))
    diff = diff_baseline(_reports(_warn(), _err()), baseline)
    doc = json.loads(json.dumps(diff.to_dict()))
    assert doc["version"] == BASELINE_VERSION
    assert [f["code"] for f in doc["new"]] == ["RL201"]
