"""Seeded miscompile corpus for the RL5xx plan-verification passes.

Each injector takes a *correct* compiled value program (straight out of
:func:`repro.arrays.vector_compile.compile_plan`) and applies one
targeted corruption — the defect class its RL5xx code documents in
``docs/static-analysis.md``:

* :func:`drop_slot` — a scheduled firing silently vanishes from its
  depth-batch (RL501: slot coverage);
* :func:`swap_batch_order` — batches replay out of depth order, reading
  slots no earlier batch produced (RL502: causality);
* :func:`wrong_semiring_step` — a MAC batch is retyped as a field
  multiply, changing the opcode census (RL503: semiring typing);
* :func:`out_of_range_gather` — one gather index points past the slot
  array (RL504: index-bounds soundness).

The injectors are pure: they return a new :class:`CompiledPlan` built
with :func:`dataclasses.replace` and never mutate the input (or the
process-wide compile cache).  ``tests/lint/test_plan_passes.py`` proves
each corruption is caught by exactly the pass that documents it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arrays.vector_compile import CompiledPlan, VectorStep, compile_plan
from repro.core.partitioner import partition_transitive_closure
from repro.core.semiring import BOOLEAN
from repro.lint import LintTarget

__all__ = [
    "clean_target",
    "drop_slot",
    "swap_batch_order",
    "wrong_semiring_step",
    "out_of_range_gather",
    "MISCOMPILES",
]


def clean_target(n: int = 9, m: int = 3) -> LintTarget:
    """A correct design with its freshly compiled value program attached.

    Compiles through :func:`compile_plan` directly (not the cached
    :func:`get_compiled`) so corrupted copies can never leak into the
    process-wide compile cache.
    """
    impl = partition_transitive_closure(n=n, m=m)
    compiled = compile_plan(impl.exec_plan, impl.dg, BOOLEAN)
    return LintTarget(
        description=f"miscompile corpus base (n={n} m={m})",
        dg=impl.dg,
        exec_plan=impl.exec_plan,
        compiled=compiled,
        semiring=BOOLEAN,
    )


def _replace_step(
    cp: CompiledPlan, pos: int, step: VectorStep
) -> CompiledPlan:
    steps = list(cp.steps)
    steps[pos] = step
    return dataclasses.replace(cp, steps=tuple(steps))


def _widest_step(cp: CompiledPlan) -> int:
    """Position of the widest batch (guaranteed to have >= 2 entries)."""
    pos = max(range(len(cp.steps)), key=lambda i: cp.steps[i].width)
    assert cp.steps[pos].width >= 2, "corpus base program is too small"
    return pos


def drop_slot(cp: CompiledPlan) -> CompiledPlan:
    """RL501: one firing's output entry vanishes from its batch."""
    pos = _widest_step(cp)
    step = cp.steps[pos]
    return _replace_step(
        cp,
        pos,
        dataclasses.replace(
            step,
            out_idx=step.out_idx[:-1],
            role_idx=tuple(idx[:-1] for idx in step.role_idx),
        ),
    )


def swap_batch_order(cp: CompiledPlan) -> CompiledPlan:
    """RL502: batches replay in reverse depth order."""
    assert len(cp.steps) >= 2, "corpus base program is too small"
    return dataclasses.replace(cp, steps=tuple(reversed(cp.steps)))


def wrong_semiring_step(cp: CompiledPlan) -> CompiledPlan:
    """RL503: a MAC batch is retyped as the wrong semiring step."""
    pos = next(
        i for i, s in enumerate(cp.steps) if s.opcode == "mac"
    )
    return _replace_step(
        cp, pos, dataclasses.replace(cp.steps[pos], opcode="mul")
    )


def out_of_range_gather(cp: CompiledPlan) -> CompiledPlan:
    """RL504: one gather index points past the slot array."""
    pos = _widest_step(cp)
    step = cp.steps[pos]
    idx = np.array(step.role_idx[0], copy=True)
    idx[-1] = cp.n_slots + 7
    return _replace_step(
        cp,
        pos,
        dataclasses.replace(
            step, role_idx=(idx,) + tuple(step.role_idx[1:])
        ),
    )


#: ``code -> (pass name, injector)``: the guaranteed-firing defect each
#: RL5xx structural pass must catch.
MISCOMPILES = {
    "RL501": ("plan.coverage", drop_slot),
    "RL502": ("plan.causality", swap_batch_order),
    "RL503": ("plan.typing", wrong_semiring_step),
    "RL504": ("plan.bounds", out_of_range_gather),
}
