"""RL401 mutation corpus: sound recovery plans lint clean, broken ones
(re-fired committed nodes, dead/unmapped cells, uncovered slot nodes)
are caught before a resumed run executes a single degraded cycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lint import LintTarget, run_lint
from repro.resilience import RecoveryPlan


def make_plan(**overrides) -> RecoveryPlan:
    """A sound resume: nodes c/d fire on logical cells 0/1, which map to
    surviving physical cells 0/2 (physical 1 retired)."""
    base = dict(
        description="resume linear m=2 after retiring [1]",
        to_fire=frozenset({"c", "d"}),
        committed=frozenset({"a", "b"}),
        slot_nodes=frozenset({"a", "b", "c", "d"}),
        cell_of={"c": 0, "d": 1},
        cell_map={0: 0, 1: 2},
        retired=frozenset({1}),
    )
    base.update(overrides)
    return RecoveryPlan(**base)


def lint(rp: RecoveryPlan):
    return run_lint(
        LintTarget(description=rp.description, recovery=rp),
        record_metrics=False,
    )


def test_sound_plan_is_clean() -> None:
    report = lint(make_plan())
    assert report.ok
    assert "RL401" not in report.codes()


def test_recovery_target_runs_only_the_recovery_pass() -> None:
    report = lint(make_plan())
    assert report.passes_run == ("recovery.sound",)


def test_refired_committed_node() -> None:
    report = lint(
        make_plan(
            to_fire=frozenset({"b", "c", "d"}),
            cell_of={"b": 0, "c": 0, "d": 1},
        )
    )
    assert not report.ok
    assert "RL401" in report.codes()
    assert any("fire again" in d.message for d in report.errors)


def test_node_mapped_to_retired_cell() -> None:
    report = lint(make_plan(cell_map={0: 0, 1: 1}))
    assert not report.ok
    assert any("retired cell" in d.message for d in report.errors)


def test_unmapped_logical_cell() -> None:
    report = lint(make_plan(cell_map={0: 0}))
    assert not report.ok
    assert any("unmapped" in d.message for d in report.errors)


def test_node_without_cell_assignment() -> None:
    report = lint(make_plan(cell_of={"c": 0}))
    assert not report.ok
    assert any("no cell assignment" in d.message for d in report.errors)


def test_uncovered_slot_nodes() -> None:
    report = lint(
        make_plan(to_fire=frozenset({"c"}), cell_of={"c": 0})
    )
    assert not report.ok
    assert any("never complete" in d.message for d in report.errors)


def test_multiple_defects_all_reported() -> None:
    report = lint(
        make_plan(
            to_fire=frozenset({"a", "c"}),  # re-fires a, drops d
            cell_of={"a": 0, "c": 1},
            cell_map={0: 0},  # logical 1 unmapped
        )
    )
    assert len(report.errors) == 3


def test_runtime_repartition_plans_lint_clean() -> None:
    """The runtime's own recovery plans must pass their RL401 preflight
    (a failing preflight raises LintError out of run_resilient)."""
    from repro.core.partitioner import partition_transitive_closure
    from repro.resilience import FaultKind, FaultSpec, run_resilient_closure

    impl = partition_transitive_closure(n=9, m=3)
    rng = np.random.default_rng(7)
    a = (rng.random((9, 9)) < 0.4).astype(np.int64)
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=0)
    result = run_resilient_closure(impl, a, faults=[spec], record_metrics=False)
    assert result.repartitions == 1
    assert result.oracle_ok


def test_rl401_in_catalogue_and_registry() -> None:
    from repro.lint import all_passes
    from repro.lint.diagnostics import RULE_CATALOG

    assert "RL401" in RULE_CATALOG
    (rp,) = [p for p in all_passes() if p.name == "recovery.sound"]
    assert rp.codes == ("RL401",)
    assert rp.requires == ("recovery",)


@pytest.mark.parametrize("stage", ["graph", "schedule", "array"])
def test_non_recovery_targets_skip_the_pass(stage) -> None:
    from repro.algorithms.transitive_closure import tc_regular
    from repro.lint import lint_graph

    report = lint_graph(tc_regular(5))
    assert "recovery.sound" in report.passes_skipped
