"""RL5xx/RL6xx planner tiers: seeded miscompiles, bounds, cache, preflight.

Four contracts:

* every structural RL5xx pass flags its guaranteed-firing defect from
  ``miscompile_corpus`` while the clean program stays silent;
* RL601's critical-path bound is *tight* on every shipped configuration
  (the static bound equals the simulated makespan);
* linting an unchanged plan twice is served from the fingerprint-keyed
  lint cache, observable via ``repro_lint_cache_hits_total``;
* the env-gated post-compile preflight rejects a miscompiled program
  with :class:`LintError` and seeds the lint cache on success.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

import pytest

from repro.arrays.vector_compile import (
    clear_compiled_cache,
    get_compiled,
)
from repro.core.partitioner import partition_transitive_closure
from repro.core.semiring import BOOLEAN
from repro.lint import (
    LintError,
    LintTarget,
    SHIPPED_CONFIGS,
    Severity,
    clear_lint_cache,
    lint_cache_info,
    lint_compiled,
    lint_target,
    run_lint,
)
from repro.lint.planner import planner_pass_names, planner_preflight
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.profile import critical_path

from .miscompile_corpus import (
    MISCOMPILES,
    clean_target,
    wrong_semiring_step,
)


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolated metrics registry and an empty lint cache per test."""
    prev = set_registry(MetricsRegistry())
    clear_lint_cache()
    yield
    clear_lint_cache()
    set_registry(prev)


@pytest.fixture(scope="module")
def base():
    """One clean compiled design shared by the corpus tests (read-only)."""
    return clean_target()


def _planner_lint(target: LintTarget, only: str | None = None):
    passes = [only] if only else list(planner_pass_names())
    return run_lint(target, passes=passes)


# ----------------------------------------------------------------------
# RL5xx — the seeded miscompile corpus
# ----------------------------------------------------------------------
def test_clean_program_planner_tiers_silent(base) -> None:
    report = _planner_lint(base)
    assert report.ok, report.to_text()
    assert [d for d in report.diagnostics
            if d.severity is Severity.ERROR] == []


@pytest.mark.parametrize("code", sorted(MISCOMPILES))
def test_each_rl5xx_flags_its_miscompile(base, code: str) -> None:
    pass_name, inject = MISCOMPILES[code]
    mutant = dataclasses.replace(base, compiled=inject(base.compiled))
    report = _planner_lint(mutant, only=pass_name)
    assert code in report.codes(), report.to_text()
    assert not report.ok
    # The clean program is silent under the very same pass.
    assert _planner_lint(base, only=pass_name).ok


def test_rl5xx_findings_carry_a_fix_suggestion(base) -> None:
    mutant = dataclasses.replace(
        base, compiled=wrong_semiring_step(base.compiled)
    )
    report = _planner_lint(mutant, only="plan.typing")
    assert report.diagnostics
    assert all(d.suggestion for d in report.diagnostics)


def test_rl505_flags_undocumented_fallback_reason(base) -> None:
    from repro.obs.metrics import get_registry

    counter = get_registry().counter(
        "repro_vector_fallback_total",
        "Runs the vector backend handed to the reference interpreter",
    )
    counter.inc(reason="probe")  # documented: stays silent
    report = _planner_lint(base, only="plan.fallbacks")
    assert report.ok
    counter.inc(reason="mystery-escape")  # undocumented: fires
    report = _planner_lint(base, only="plan.fallbacks")
    assert "RL505" in report.codes()
    assert "mystery-escape" in report.to_text()


# ----------------------------------------------------------------------
# RL6xx — static cost bounds and anti-patterns
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", SHIPPED_CONFIGS, ids=lambda c: c.name)
def test_rl601_bound_is_tight_on_every_shipped_config(config) -> None:
    target = config.build()
    path = critical_path(target.exec_plan, target.dg)
    assert path.length == target.exec_plan.makespan, config.name


def test_rl601_flags_tampered_makespan(base) -> None:
    mutant = dataclasses.replace(
        base,
        compiled=dataclasses.replace(
            base.compiled, makespan=base.compiled.makespan + 3
        ),
    )
    report = _planner_lint(mutant, only="cost.makespan")
    assert "RL601" in report.codes()
    assert not report.ok


def test_rl602_flags_tampered_static_measures(base) -> None:
    mutant = dataclasses.replace(
        base,
        compiled=dataclasses.replace(
            base.compiled,
            memory_words=base.compiled.memory_words + 5,
            busy=base.compiled.busy - 1,
        ),
    )
    report = _planner_lint(mutant, only="cost.traffic")
    msgs = [d.message for d in report.diagnostics]
    assert "RL602" in report.codes()
    assert any("memory_words" in m for m in msgs)
    assert any("busy" in m for m in msgs)


def test_rl603_flags_demand_over_bound(base) -> None:
    starved = dataclasses.replace(base, io_bound=Fraction(1, 1000))
    report = _planner_lint(starved, only="cost.iobandwidth")
    assert "RL603" in report.codes()
    assert report.ok  # warn severity: no error findings


def test_rl604_flags_fragmented_program(base) -> None:
    cp = base.compiled
    narrow = cp.steps[: len(cp.steps)]
    # Rebuild as many single-entry batches: same arrays, width 1 each.
    steps = tuple(
        dataclasses.replace(
            s,
            out_idx=s.out_idx[:1],
            role_idx=tuple(idx[:1] for idx in s.role_idx),
        )
        for s in narrow
        for _ in range(2)
    )
    assert len(steps) > 8
    mutant = dataclasses.replace(
        base, compiled=dataclasses.replace(cp, steps=steps)
    )
    report = _planner_lint(mutant, only="cost.fragmentation")
    assert "RL604" in report.codes()


def test_rl605_flags_chronic_underutilization(base) -> None:
    mutant = dataclasses.replace(
        base, compiled=dataclasses.replace(base.compiled, busy=1)
    )
    report = _planner_lint(mutant, only="cost.utilization")
    assert "RL605" in report.codes()


def test_rl606_flags_exhausted_headroom(base) -> None:
    cp = base.compiled
    demand = Fraction(len(cp.input_ids), cp.makespan)
    tight = dataclasses.replace(base, io_bound=demand * Fraction(100, 95))
    report = _planner_lint(tight, only="cost.headroom")
    assert "RL606" in report.codes()
    # Generous headroom: silent.
    roomy = dataclasses.replace(base, io_bound=demand * 2)
    assert _planner_lint(roomy, only="cost.headroom").ok


# ----------------------------------------------------------------------
# Shipped configs stay zero-error under the full planner tiers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", SHIPPED_CONFIGS, ids=lambda c: c.name)
def test_shipped_configs_zero_error_with_planner(config) -> None:
    report = lint_target(config.build(), planner=True)
    errors = [
        d for d in report.diagnostics if d.severity is Severity.ERROR
    ]
    assert errors == [], report.to_text()
    run = set(report.passes_run)
    assert {"plan.coverage", "cost.makespan"} <= run


# ----------------------------------------------------------------------
# The incremental lint cache
# ----------------------------------------------------------------------
def test_lint_cache_hit_on_unchanged_fingerprint() -> None:
    impl = partition_transitive_closure(n=6, m=3)
    first = lint_compiled(impl.exec_plan, impl.dg)
    info = lint_cache_info()
    assert info["hits"] == 0 and info["misses"] == 1
    second = lint_compiled(impl.exec_plan, impl.dg)
    info = lint_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    assert second.diagnostics == first.diagnostics
    assert second.passes_run == first.passes_run
    # The cached copy is isolated: mutating a served report is safe.
    second.diagnostics.clear()
    third = lint_compiled(impl.exec_plan, impl.dg)
    assert third.diagnostics == first.diagnostics


def test_lint_cache_keyed_on_io_bound() -> None:
    impl = partition_transitive_closure(n=6, m=3)
    lint_compiled(impl.exec_plan, impl.dg, io_bound=Fraction(1, 2))
    lint_compiled(impl.exec_plan, impl.dg, io_bound=Fraction(1, 3))
    assert lint_cache_info()["misses"] == 2
    lint_compiled(impl.exec_plan, impl.dg, io_bound=Fraction(1, 2))
    assert lint_cache_info()["hits"] == 1


# ----------------------------------------------------------------------
# The env-gated post-compile preflight
# ----------------------------------------------------------------------
def test_preflight_rejects_a_miscompile(base) -> None:
    with pytest.raises(LintError) as exc:
        planner_preflight(
            wrong_semiring_step(base.compiled),
            base.exec_plan,
            base.dg,
            BOOLEAN,
        )
    assert "RL503" in exc.value.report.codes()


def test_preflight_env_gate_seeds_the_lint_cache(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_LINT_PLANNER", "1")
    clear_compiled_cache()
    impl = partition_transitive_closure(n=6, m=3)
    get_compiled(impl.exec_plan, impl.dg, BOOLEAN)  # preflight runs
    assert lint_cache_info() == {"hits": 0, "misses": 1, "size": 1}
    # An explicit planner lint of the same plan is now a cache hit.
    lint_compiled(impl.exec_plan, impl.dg)
    assert lint_cache_info()["hits"] == 1


def test_preflight_env_gate_off_by_default(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_LINT_PLANNER", raising=False)
    clear_compiled_cache()
    impl = partition_transitive_closure(n=6, m=3)
    get_compiled(impl.exec_plan, impl.dg, BOOLEAN)
    assert lint_cache_info()["misses"] == 0
