"""Registry behaviour and the lint hooks in partitioner/verifier/metrics."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import group_by_columns
from repro.core.partitioner import partition, partition_transitive_closure
from repro.core.verify import verify_implementation
from repro.lint import (
    LintError,
    LintTarget,
    all_passes,
    lint_graph,
    preflight,
    run_lint,
)


# ----------------------------------------------------------------------
# Pass registry / runner
# ----------------------------------------------------------------------
def test_pass_order_is_graph_schedule_array() -> None:
    names = [p.name for p in all_passes()]
    prefixes = [n.split(".")[0] for n in names]
    stages = ("graph", "schedule", "array", "recovery", "plan", "cost")
    assert prefixes == sorted(prefixes, key=stages.index)
    assert len(names) == len(set(names))


def test_graph_only_target_skips_later_passes() -> None:
    report = lint_graph(tc_regular(6))
    assert report.passes_run
    assert all(p.startswith("graph.") for p in report.passes_run)
    assert any(p.startswith("schedule.") for p in report.passes_skipped)
    assert any(p.startswith("array.") for p in report.passes_skipped)


def test_unknown_pass_name_raises() -> None:
    with pytest.raises(KeyError, match="unknown lint pass"):
        run_lint(LintTarget.from_graph(tc_regular(4)), passes=["nope"])


def test_crashing_pass_reports_rl001() -> None:
    from repro.lint import registry as reg

    @reg.lint_pass("test.crash", codes=("RL001",), requires=("dg",))
    def crash(target):  # pragma: no cover - body raises immediately
        raise RuntimeError("boom")

    try:
        report = reg.run_lint(
            LintTarget.from_graph(tc_regular(4)), passes=["test.crash"]
        )
        assert "RL001" in report.codes()
        assert not report.ok
        assert "boom" in report.by_code("RL001")[0].message
    finally:
        del reg._REGISTRY["test.crash"]


def test_duplicate_pass_registration_rejected() -> None:
    from repro.lint import registry as reg

    with pytest.raises(ValueError, match="registered twice"):
        reg.lint_pass("graph.broadcast", codes=("RL101",), requires=("dg",))(
            lambda t: []
        )


# ----------------------------------------------------------------------
# preflight hooks
# ----------------------------------------------------------------------
def test_partitioner_preflight_accepts_clean_design() -> None:
    impl = partition_transitive_closure(n=9, m=3, preflight=True)
    assert impl.report.total_time > 0


def test_generic_partition_preflight() -> None:
    impl = partition(tc_regular(8), group_by_columns, 3, preflight=True)
    assert impl.plan.m == 3


def test_preflight_raises_lint_error_on_broken_design() -> None:
    dg = tc_regular(5)
    dg.g.add_edge(("cell", 4, 2, 2), ("cell", 0, 1, 1))  # cycle
    with pytest.raises(LintError) as ei:
        preflight(LintTarget.from_graph(dg))
    assert "RL105" in ei.value.report.codes()
    assert "static design check failed" in str(ei.value)


# ----------------------------------------------------------------------
# verifier attachment
# ----------------------------------------------------------------------
def test_verify_attaches_lint_report() -> None:
    impl = partition_transitive_closure(n=8, m=3)
    rep = verify_implementation(impl, trials=2, seed=1)
    assert rep.ok
    assert rep.lint is not None
    assert rep.lint.ok
    assert "lint:" in rep.summary()


def test_verify_preflight_opt_out() -> None:
    impl = partition_transitive_closure(n=8, m=3)
    rep = verify_implementation(impl, trials=1, seed=1, preflight=False)
    assert rep.lint is None
    assert "lint:" not in rep.summary()


# ----------------------------------------------------------------------
# metrics wiring
# ----------------------------------------------------------------------
def test_lint_metrics_counters() -> None:
    from repro.obs.metrics import get_registry

    reg = get_registry()
    runs = reg.counter("repro_lint_runs_total")
    before = runs.value()
    report = lint_graph(tc_regular(5))
    assert runs.value() == before + 1
    findings = reg.counter("repro_lint_findings_total")
    for d in report.diagnostics:  # every finding was counted by labels
        assert findings.value(code=d.code, severity=d.severity.value) >= 1


def test_lint_metrics_opt_out() -> None:
    from repro.obs.metrics import get_registry

    reg = get_registry()
    runs = reg.counter("repro_lint_runs_total")
    before = runs.value()
    run_lint(LintTarget.from_graph(tc_regular(4)), record_metrics=False)
    assert runs.value() == before
