"""Tests for the experiment registry and the reproduce CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS, run_experiment

#: Every experiment id DESIGN.md's index promises.
PROMISED = {
    "F01", "F02", "F03", "F04", "F05", "F07", "F10-F11", "F12-F16",
    "F17", "F18", "F19", "F20", "F20-BIT", "F21", "F22", "DS-AGREE",
    "T-EVAL", "T-BASE", "T-FT",
    "A-POL", "A-GRP", "A-ALN", "A-CHAIN", "A-EXT", "A-COST", "A-HYB",
}


def test_registry_covers_design_index() -> None:
    assert set(EXPERIMENTS) == PROMISED
    for exp in EXPERIMENTS.values():
        assert exp.title
        assert callable(exp.build)


@pytest.mark.parametrize("exp_id", ["F05", "F07", "F10-F11", "A-GRP", "A-COST"])
def test_fast_experiments_produce_tables(exp_id: str) -> None:
    rows = run_experiment(exp_id)
    assert rows and isinstance(rows, list)
    assert all(isinstance(r, dict) for r in rows)
    # All rows of one table share the same columns.
    keys = set(rows[0])
    assert all(set(r) == keys for r in rows)


def test_run_experiment_unknown() -> None:
    with pytest.raises(KeyError):
        run_experiment("F99")


def test_cli_reproduce_lists(capsys) -> None:
    assert main(["reproduce"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("F18", "T-EVAL", "A-POL"):
        assert exp_id in out


def test_cli_reproduce_runs_one(capsys) -> None:
    assert main(["reproduce", "F10-F11"]) == 0
    out = capsys.readouterr().out
    assert "n(n-1)(n-2)" in out


def test_cli_reproduce_rejects_unknown() -> None:
    assert main(["reproduce", "NOPE"]) == 2
