"""Regression tests for the benchmark recorder (``benchmarks/_common.py``).

Benchmarks that format per-size rows but never pass ``n``/``m``
explicitly (A-ALN and friends) used to land in the history store as
``"n": null`` — :func:`save_table` now infers dimensions from the rows
themselves, so records carry them whenever the table knows them.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture()
def common(monkeypatch, tmp_path):
    """A private ``_common`` instance writing under ``tmp_path``."""
    spec = importlib.util.spec_from_file_location(
        "_bench_common_under_test", BENCH_DIR / "_common.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    out = tmp_path / "out"
    monkeypatch.setattr(mod, "OUT_DIR", out)
    monkeypatch.setattr(mod, "HISTORY_PATH", out / "history.jsonl")
    monkeypatch.setattr(mod, "TRAJECTORY_PATH", tmp_path / "BENCH_PERF.json")
    mod.set_quiet(True)
    return mod


def last_record(mod) -> dict:
    return json.loads(mod.HISTORY_PATH.read_text().splitlines()[-1])


class TestInferDim:
    def test_largest_numeric_wins(self, common) -> None:
        rows = [{"n": 4}, {"n": 12.0}, {"n": 8}]
        assert common._infer_dim(rows, "n") == 12

    def test_null_and_missing_skipped(self, common) -> None:
        rows = [{"n": None}, {"m": 3}, {"n": 6}]
        assert common._infer_dim(rows, "n") == 6

    def test_bool_is_not_a_dimension(self, common) -> None:
        assert common._infer_dim([{"n": True}], "n") is None

    def test_no_numeric_values_is_none(self, common) -> None:
        assert common._infer_dim([{"k": 1}], "n") is None
        assert common._infer_dim([], "n") is None


class TestSaveTableStampsDims:
    def test_inferred_from_rows(self, common) -> None:
        common.save_table("T-INFER", "t", "body",
                          rows=[{"n": 6, "m": 3}, {"n": 12, "m": None}])
        rec = last_record(common)
        assert rec["n"] == 12 and rec["m"] == 3

    def test_explicit_dims_win_over_rows(self, common) -> None:
        common.save_table("T-EXPL", "t", "body", rows=[{"n": 6}], n=99)
        assert last_record(common)["n"] == 99

    def test_dimensionless_rows_stay_null(self, common) -> None:
        common.save_table("T-NULL", "t", "body", rows=[{"k": 1}])
        rec = last_record(common)
        assert rec["n"] is None and rec["m"] is None

    def test_mixed_history_rolls_up(self, common) -> None:
        # One null-dim record and one stamped record coexist in the same
        # history; the trajectory roll-up and the dashboard must take
        # both (the dashboard side is covered in tests/obs).
        common.save_table("T-NULL", "legacy", "body", rows=[{"k": 1}])
        common.save_table("T-DIM", "stamped", "body", rows=[{"n": 12, "m": 4}])
        recs = [json.loads(line)
                for line in common.HISTORY_PATH.read_text().splitlines()]
        assert [r["n"] for r in recs] == [None, 12]
        doc = json.loads(common.TRAJECTORY_PATH.read_text())
        assert {"T-NULL", "T-DIM"} <= set(doc["experiments"])
