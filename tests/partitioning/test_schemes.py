"""Tests for the three partitioning approaches (Figs. 1-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.partitioning.coalescing import coalesce_by_strips
from repro.partitioning.cut_and_pile import cut_and_pile
from repro.partitioning.decomposition import band_matmul_decomposition


def tc_gg(n: int) -> GGraph:
    return GGraph(tc_regular(n), group_by_columns)


class TestCoalescing:
    def test_partition_into_m_cells(self) -> None:
        gg = tc_gg(8)
        res = coalesce_by_strips(gg, 3)
        assert set(res.cell_of.values()) <= {0, 1, 2}
        assert res.total_time > 0
        assert 0 < float(res.occupancy) <= 1

    def test_local_storage_grows_quadratically(self) -> None:
        """The Fig. 1 caveat: per-cell storage is O(n^2/m), not O(1)."""
        m = 2
        s1 = coalesce_by_strips(tc_gg(6), m).max_local_storage
        s2 = coalesce_by_strips(tc_gg(12), m).max_local_storage
        assert s2 > 3 * s1  # super-linear growth in n

    def test_cut_and_pile_needs_no_local_storage(self) -> None:
        """Contrast: LPGS parks everything in *external* memory."""
        gg = tc_gg(10)
        co = coalesce_by_strips(gg, 2)
        cp = cut_and_pile(gg, 2)
        assert co.max_local_storage > 10
        assert cp.report.memory_words > 0  # external, not per-cell

    def test_single_cell_has_no_links(self) -> None:
        res = coalesce_by_strips(tc_gg(5), 1)
        assert res.link_words == 0

    def test_rejects_zero_cells(self) -> None:
        with pytest.raises(ValueError, match="at least one"):
            coalesce_by_strips(tc_gg(5), 0)


class TestCutAndPile:
    def test_linear_and_mesh(self) -> None:
        gg = tc_gg(8)
        lin = cut_and_pile(gg, 4, "linear")
        mesh = cut_and_pile(gg, 4, "mesh")
        assert lin.report.geometry == "linear"
        assert mesh.report.geometry == "mesh"
        assert lin.exec_plan.stall_cycles == 0
        assert mesh.exec_plan.stall_cycles == 0

    def test_unknown_geometry(self) -> None:
        with pytest.raises(ValueError, match="unknown geometry"):
            cut_and_pile(tc_gg(6), 4, "torus")

    def test_zero_overhead(self) -> None:
        cp = cut_and_pile(tc_gg(9), 3)
        assert cp.report.overhead == 0


class TestDecomposition:
    @given(
        n=st.integers(2, 10),
        band=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_band_decomposition_correct(self, n, band, seed) -> None:
        band = min(band, n)
        rng = np.random.default_rng(seed)
        a, b = rng.random((n, n)), rng.random((n, n))
        res = band_matmul_decomposition(a, b, band)
        assert np.allclose(res.result, a @ b)
        assert res.passes == -(-n // band)

    def test_traffic_shrinks_with_wider_bands(self) -> None:
        rng = np.random.default_rng(0)
        a, b = rng.random((12, 12)), rng.random((12, 12))
        narrow = band_matmul_decomposition(a, b, 2)
        wide = band_matmul_decomposition(a, b, 6)
        assert narrow.c_traffic > wide.c_traffic
        assert narrow.passes > wide.passes

    def test_validation(self) -> None:
        a = np.zeros((3, 3))
        with pytest.raises(ValueError, match="band width"):
            band_matmul_decomposition(a, a, 0)
        with pytest.raises(ValueError, match="mismatch"):
            band_matmul_decomposition(np.zeros((2, 3)), np.zeros((2, 3)), 1)

    def test_traffic_per_pass(self) -> None:
        rng = np.random.default_rng(1)
        a, b = rng.random((8, 8)), rng.random((8, 8))
        res = band_matmul_decomposition(a, b, 4)
        assert res.traffic_per_pass > 0
