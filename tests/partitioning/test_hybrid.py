"""Tests for the hybrid cut-and-pile + coalescing scheme."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.partitioning.coalescing import coalesce_by_strips
from repro.partitioning.hybrid import hybrid_partition


@pytest.fixture(scope="module")
def gg16():
    return GGraph(tc_regular(16), group_by_columns)


def test_storage_falls_with_piles(gg16) -> None:
    """The paper's conjecture: piling first reduces coalescing storage."""
    pure = coalesce_by_strips(gg16, 4).max_local_storage
    storages = [hybrid_partition(gg16, 4, p).max_local_storage for p in (2, 4, 8)]
    assert all(s < pure for s in storages)
    assert storages == sorted(storages, reverse=True)


def test_external_traffic_grows_with_piles(gg16) -> None:
    externals = [hybrid_partition(gg16, 4, p).external_words for p in (1, 2, 4, 8)]
    assert externals[0] == 0  # one pile == pure coalescing
    assert externals == sorted(externals)


def test_one_pile_equals_pure_coalescing(gg16) -> None:
    pure = coalesce_by_strips(gg16, 4)
    h = hybrid_partition(gg16, 4, 1)
    assert h.max_local_storage == pure.max_local_storage
    assert h.total_time == pure.total_time
    assert h.external_words == 0


def test_pile_results_cover_all_gnodes(gg16) -> None:
    h = hybrid_partition(gg16, 4, 4)
    covered = sum(len(r.cell_of) for r in h.pile_results)
    assert covered == len(gg16.gnodes)
    assert 0 < float(h.occupancy) <= 1


def test_validation(gg16) -> None:
    with pytest.raises(ValueError, match="at least one"):
        hybrid_partition(gg16, 4, 0)
    with pytest.raises(ValueError, match="cannot cut"):
        hybrid_partition(gg16, 4, 999)
