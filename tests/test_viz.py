"""Tests for the ASCII renderings."""

from __future__ import annotations

from repro.algorithms.lu import lu_ggraph
from repro.algorithms.transitive_closure import TC_STAGES, tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.viz import (
    format_table,
    render_ggraph_times,
    render_level_grid,
    render_schedule,
    render_stage_table,
)


def test_format_table_alignment() -> None:
    rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    assert lines[0].split() == ["a", "b"]
    assert all(len(line) == len(lines[0]) for line in lines[2:])


def test_format_table_empty() -> None:
    assert format_table([]) == "(empty)"


def test_format_table_column_selection() -> None:
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"])
    assert "b" not in text.splitlines()[0]


def test_format_table_floats_rounded() -> None:
    assert "0.3333" in format_table([{"x": 1 / 3}])


def test_render_ggraph_times_uniform() -> None:
    gg = GGraph(tc_regular(5), group_by_columns)
    text = render_ggraph_times(gg)
    assert text.count("5") >= 30  # a 5x6 grid of fives
    assert "k=  0" in text


def test_render_ggraph_times_triangular() -> None:
    text = render_ggraph_times(lu_ggraph(5))
    lines = text.splitlines()
    assert len(lines) == 4  # levels 0..3
    # The triangular shape: later levels have leading blanks.
    assert lines[-1].count("1") == 2


def test_render_schedule_wraps() -> None:
    gg = GGraph(tc_regular(6), group_by_columns)
    plan = make_linear_gsets(gg, 3)
    order = schedule_gsets(plan)
    text = render_schedule(order, per_line=4)
    assert "t   0:" in text
    assert "->" in text
    assert len(text.splitlines()) >= len(order) // 4


def test_render_stage_table_columns() -> None:
    text = render_stage_table({k: f(4) for k, f in TC_STAGES.items()})
    header = text.splitlines()[0]
    for col in ("stage", "broadcasts", "unidirectional", "stencils"):
        assert col in header
    assert "regular" in text


def test_render_level_grid_legend() -> None:
    text = render_level_grid(tc_regular(5), 2, 5)
    body = "\n".join(text.splitlines()[1:])  # drop the header line
    assert body.count("D") == 5  # the delay column
    assert body.count("s") == 4  # the shifted diagonal
    assert body.count("*") == 12  # (n-1)(n-2) compute cells
    assert text.splitlines()[1].startswith("r")  # transmit row on top


def test_render_level_grid_missing_level() -> None:
    assert "no nodes" in render_level_grid(tc_regular(5), 99, 5)


def test_render_gantt_window() -> None:
    from repro.core.gsets import make_linear_gsets, schedule_gsets
    from repro.arrays.plan import partitioned_plan
    from repro.viz import render_gantt

    dg = tc_regular(5)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, 2)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    text = render_gantt(ep, dg, start=0, width=30)
    lines = text.splitlines()
    assert lines[0].startswith("cycles 0..29")
    assert len(lines) == 3  # header + 2 cells
    body = "".join(lines[1:])
    assert "#" in body and "." in body
    # Every row fits the window.
    for line in lines[1:]:
        assert line.count("|") == 2
        assert len(line.split("|")[1]) == 30


# ----------------------------------------------------------------------
# SVG primitives (repro.viz.svg) — used by the HTML dashboard.
# ----------------------------------------------------------------------

def _wellformed(svg_text: str) -> None:
    import xml.etree.ElementTree as ET

    ET.fromstring(svg_text)


def test_svg_heatmap_cells_and_tooltips() -> None:
    from repro.viz import svg_heatmap

    svg = svg_heatmap({(0, 0): 1.0, (0, 1): 4.0, (1, 1): 2.0},
                      title="t", value_label="fires")
    _wellformed(svg)
    assert 'data-cell="0,0" data-count="1"' in svg
    assert 'data-cell="0,1" data-count="4"' in svg
    assert 'data-cell="1,1" data-count="2"' in svg
    assert svg.count("<title>") >= 3  # native hover tooltips


def test_svg_heatmap_label_ink_flips_on_dark_fill() -> None:
    from repro.viz.svg import ink_on, seq_color

    assert ink_on(seq_color(0.05)) != ink_on(seq_color(1.0))


def test_svg_line_chart_series_cap_and_legend() -> None:
    import pytest

    from repro.viz import svg_line_chart

    pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]
    key = 'width="14" height="4"'  # the legend's colored key swatch
    one = svg_line_chart([("a", pts)], title="t", x_label="x", y_label="y")
    _wellformed(one)
    assert key not in one  # a single series needs no legend box
    two = svg_line_chart([("a", pts), ("b", pts)], title="t",
                         x_label="x", y_label="y")
    _wellformed(two)
    assert two.count(key) == 2  # one key per series
    with pytest.raises(ValueError):
        svg_line_chart([(f"s{i}", pts) for i in range(4)], title="t",
                       x_label="x", y_label="y")


def test_svg_line_chart_step_mode() -> None:
    from repro.viz import svg_line_chart

    pts = [(0.0, 0.0), (2.0, 4.0)]
    smooth = svg_line_chart([("a", pts)], title="t", x_label="x", y_label="y")
    step = svg_line_chart([("a", pts)], title="t", x_label="x", y_label="y",
                          step=True)
    _wellformed(step)
    assert step != smooth  # the step curve inserts the horizontal riser


def test_svg_lanes_tooltips_per_fire() -> None:
    from repro.viz import svg_lanes

    svg = svg_lanes(
        {"cell0": [(0, "compute"), (2, "transmit")],
         "cell1": [(1, "delay")]},
        makespan=4,
        classes=("compute", "transmit", "delay"),
        title="occupancy",
    )
    _wellformed(svg)
    assert svg.count("<title>") >= 3  # one tooltip per fired tick


def test_svg_nice_ticks_cover_range() -> None:
    from repro.viz.svg import nice_ticks

    ticks = nice_ticks(0.0, 97.0, 5)
    assert ticks and 0.0 <= ticks[0] and ticks[-1] <= 97.0
    assert ticks == sorted(ticks)
    steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
    assert len(steps) == 1  # uniform, round-number spacing
    assert ticks[-1] >= 97.0 - steps.pop()  # last tick within one step of hi


def test_svg_flamegraph_frames_and_tooltips() -> None:
    from repro.viz import svg_flamegraph

    tree = {
        "name": "run", "count": 1, "total_s": 1.0, "self_s": 0.2,
        "children": [
            {"name": "simulate", "count": 1, "total_s": 0.6, "self_s": 0.6,
             "children": []},
            {"name": "partition", "count": 1, "total_s": 0.2, "self_s": 0.2,
             "children": []},
        ],
    }
    svg = svg_flamegraph(tree, title="profile")
    _wellformed(svg)
    assert svg.startswith("<svg")
    assert 'xmlns="http://www.w3.org/2000/svg"' in svg
    assert svg.count('data-frame="') == 3  # root + both children
    assert "simulate: 0.6000s total (60.0% of run)" in svg
    assert "profile" in svg


def test_svg_flamegraph_drops_subpixel_frames() -> None:
    from repro.viz import svg_flamegraph

    tree = {
        "name": "run", "count": 1, "total_s": 1.0, "self_s": 0.0,
        "children": [
            {"name": "big", "count": 1, "total_s": 1.0 - 1e-6,
             "self_s": 1.0 - 1e-6, "children": []},
            {"name": "tiny", "count": 1, "total_s": 1e-6, "self_s": 1e-6,
             "children": []},
        ],
    }
    svg = svg_flamegraph(tree, width=400)
    _wellformed(svg)
    assert "big" in svg and "tiny" not in svg


def test_svg_flamegraph_empty_tree() -> None:
    from repro.viz import svg_flamegraph

    svg = svg_flamegraph(
        {"name": "run", "count": 1, "total_s": 0.0, "self_s": 0.0,
         "children": []}
    )
    _wellformed(svg)
