"""Smoke tests: every shipped example must run end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path: Path, capsys, monkeypatch) -> None:
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out or "Conclusion" in out


def test_examples_exist() -> None:
    assert len(EXAMPLES) >= 3, "the repository promises at least three examples"
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
