"""Closure engines and SSC baselines: every engine vs the dense oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ssc import SSC_BASELINES, ssc1, ssc2, ssc12
from repro.core.bitmatrix import pack_rows, unpack_rows
from repro.core.semiring import BOOLEAN, closure_reference
from repro.datasets import DatasetError, compute_closure, from_edges, kronecker
from repro.datasets.closure import CLOSURE_ENGINES, _closure_scc_packed


def reflexive_oracle(ds) -> np.ndarray:
    return pack_rows(closure_reference(ds.adjacency(), BOOLEAN))


class TestEngines:
    @pytest.mark.parametrize("engine", CLOSURE_ENGINES)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_engine_agrees_with_oracle(self, engine: str, seed: int) -> None:
        ds = kronecker(6, 6, seed=seed)  # n=64: one full word per row
        res = compute_closure(ds, engine)
        assert np.array_equal(res.words, reflexive_oracle(ds))

    @pytest.mark.parametrize("engine", CLOSURE_ENGINES)
    def test_word_boundary_n65(self, engine: str) -> None:
        rng = np.random.default_rng(9)
        edges = rng.integers(0, 65, size=(180, 2))
        ds = from_edges("n65", edges)
        assert ds.n == 65
        res = compute_closure(ds, engine)
        assert np.array_equal(res.words, reflexive_oracle(ds))

    def test_scc_kernel_forced(self) -> None:
        # dense_cutoff=0 forces the SCC-condensation path on a graph
        # small enough to check against the dense oracle.
        ds = kronecker(7, 6, seed=5)
        res = compute_closure(ds, "bitpack", dense_cutoff=0)
        assert res.kernel == "bitpack-scc"
        assert np.array_equal(res.words, reflexive_oracle(ds))

    def test_scc_kernel_empty_and_cyclic(self) -> None:
        empty = from_edges("e", [], n=5)
        words = _closure_scc_packed(empty)
        assert np.array_equal(words, empty.packed_adjacency(diagonal=True))
        # One big cycle: everything reaches everything.
        cyc = from_edges("c", [(i, (i + 1) % 7) for i in range(7)])
        assert unpack_rows(_closure_scc_packed(cyc), 7).all()

    def test_sources_slice(self) -> None:
        ds = kronecker(6, 6, seed=1)
        full = compute_closure(ds, "bitpack")
        part = compute_closure(ds, "ssc12", sources=[3, 17, 40])
        assert np.array_equal(part.words, full.words[[3, 17, 40]])
        assert part.sources.tolist() == [3, 17, 40]

    def test_result_metadata(self) -> None:
        ds = from_edges("t", [(0, 1), (1, 2)])
        res = compute_closure(ds, "bitpack")
        # Rows: {0,1,2}, {1,2}, {2} reflexively closed.
        assert res.reach_counts.tolist() == [3, 2, 1]
        assert res.closure_edges == 6
        assert res.agrees_with(compute_closure(ds, "reference"))

    def test_unknown_engine_and_bad_sources(self) -> None:
        ds = from_edges("t", [(0, 1)])
        with pytest.raises(DatasetError):
            compute_closure(ds, "warp-drive")
        with pytest.raises(DatasetError):
            compute_closure(ds, "ssc1", sources=[99])


class TestSSCBaselines:
    def test_registry(self) -> None:
        assert set(SSC_BASELINES) == {"ssc1", "ssc2", "ssc12"}

    def test_hybrid_matches_both_modes(self) -> None:
        ds = kronecker(7, 8, seed=2)
        srcs = np.arange(0, ds.n, 7)
        a = ssc1(ds, srcs)
        b = ssc2(ds, srcs)
        # Promotion cutoffs at the extremes pin ssc12 to each pure mode.
        set_only = ssc12(ds, srcs, alpha=2.0, beta=2.0)
        bit_only = ssc12(ds, srcs, alpha=0.0, beta=0.0)
        for rows in (b, set_only, bit_only):
            assert np.array_equal(a, rows)

    def test_rows_are_reflexive(self) -> None:
        ds = from_edges("t", [], n=66)
        rows = ssc12(ds, [0, 64, 65])
        assert unpack_rows(rows, 66)[[0, 1, 2], [0, 64, 65]].all()
        from repro.core.bitmatrix import popcount_rows

        assert popcount_rows(rows).tolist() == [1, 1, 1]  # reflexive only


class TestAtScale:
    def test_ten_k_nodes_bitpack_vs_ssc12(self) -> None:
        # The acceptance bar: closure of a >=10k-node sparse graph via
        # the bit-packed path, agreeing with the SSC12 hybrid on a
        # deterministic sample of sources.
        ds = kronecker(14, 4, seed=0)
        assert ds.n == 16384
        res = compute_closure(ds, "bitpack")
        assert res.kernel == "bitpack-scc"
        rng = np.random.default_rng(0)
        srcs = np.sort(rng.choice(ds.n, size=48, replace=False))
        assert np.array_equal(res.words[srcs], ssc12(ds, srcs))
