"""Loaders, generators, and the one canonical edge semantics."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.datasets import (
    DatasetError,
    GraphDataset,
    from_edges,
    kronecker,
    load_edgelist,
    resolve_dataset,
    save_edgelist,
)


class TestFromEdges:
    def test_dedup_and_canonical_order(self) -> None:
        ds = from_edges("t", [(2, 1), (0, 1), (2, 1), (0, 1)])
        assert ds.m == 2
        assert ds.edges.tolist() == [[0, 1], [2, 1]]
        assert ds.meta["duplicates_dropped"] == 2

    def test_self_loops_kept(self) -> None:
        ds = from_edges("t", [(0, 0), (1, 1), (0, 1)])
        assert ds.self_loops == 2
        assert ds.m == 3

    def test_n_inferred_and_explicit(self) -> None:
        assert from_edges("t", [(0, 5)]).n == 6
        assert from_edges("t", [(0, 5)], n=10).n == 10

    def test_out_of_range_is_structured(self) -> None:
        with pytest.raises(DatasetError) as exc:
            from_edges("t", [(0, 5)], n=3)
        assert exc.value.reason == "vertex-out-of-range"
        assert "remap=True" in str(exc.value)

    def test_negative_id_raises(self) -> None:
        with pytest.raises(DatasetError) as exc:
            from_edges("t", [(0, -1)])
        assert exc.value.reason == "vertex-out-of-range"

    def test_non_integer_raises(self) -> None:
        with pytest.raises(DatasetError) as exc:
            from_edges("t", [("a", "b")])
        assert exc.value.reason == "parse"

    def test_bad_shape_raises(self) -> None:
        with pytest.raises(DatasetError) as exc:
            from_edges("t", [(0, 1, 2)])
        assert exc.value.reason == "shape"

    def test_remap_compacts_external_ids(self) -> None:
        ds = from_edges("t", [(100, 7), (7, 9000)], remap=True)
        assert ds.n == 3
        assert ds.edges.tolist() == [[0, 2], [1, 0]]  # 7->0, 100->1, 9000->2
        assert ds.meta["remapped_from"] == 9001

    def test_empty(self) -> None:
        ds = from_edges("t", [])
        assert ds.n == 0 and ds.m == 0
        assert ds.adjacency().shape == (0, 0)

    def test_packed_adjacency_matches_dense(self) -> None:
        from repro.core.bitmatrix import unpack_rows

        ds = from_edges("t", [(0, 64), (64, 65), (65, 0), (3, 3)])
        for diag in (False, True):
            dense = ds.adjacency(diagonal=diag)
            packed = ds.packed_adjacency(diagonal=diag)
            assert np.array_equal(unpack_rows(packed, ds.n), dense)


class TestEdgelist:
    def test_roundtrip(self, tmp_path) -> None:
        ds = from_edges("t", [(0, 1), (1, 2), (2, 2)])
        path = tmp_path / "nested" / "t.txt"
        save_edgelist(ds, path)  # creates parent dirs
        back = load_edgelist(path)
        assert back.n == ds.n
        assert np.array_equal(back.edges, ds.edges)

    def test_gzip_and_comments(self, tmp_path) -> None:
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("# SNAP-style header\n0 1\n\n1 2\n# trailing\n")
        ds = load_edgelist(path)
        assert ds.name == "g"
        assert ds.m == 2 and ds.n == 3

    def test_parse_error_carries_line(self, tmp_path) -> None:
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 two\n")
        with pytest.raises(DatasetError) as exc:
            load_edgelist(path)
        assert exc.value.reason == "parse"
        assert exc.value.line == 2

    def test_missing_file_is_io_error(self, tmp_path) -> None:
        with pytest.raises(DatasetError) as exc:
            load_edgelist(tmp_path / "nope.txt")
        assert exc.value.reason == "io"


class TestKronecker:
    def test_deterministic(self) -> None:
        a = kronecker(6, 4, seed=3)
        b = kronecker(6, 4, seed=3)
        assert np.array_equal(a.edges, b.edges)
        assert not np.array_equal(a.edges, kronecker(6, 4, seed=4).edges)

    def test_shape_and_meta(self) -> None:
        ds = kronecker(7, 8, seed=0)
        assert ds.n == 128
        assert 0 < ds.m <= 8 * 128
        assert ds.meta["format"] == "kronecker"
        assert ds.meta["scale"] == 7

    def test_bad_scale(self) -> None:
        with pytest.raises(DatasetError):
            kronecker(-1)
        with pytest.raises(DatasetError):
            kronecker(31)


class TestResolveDataset:
    def test_kron_spec(self) -> None:
        ds = resolve_dataset("kron:scale=5,edges=4,seed=2")
        assert ds.n == 32
        assert ds.meta["seed"] == 2

    def test_path_spec(self, tmp_path) -> None:
        p = tmp_path / "e.txt"
        p.write_text("0 1\n")
        assert resolve_dataset(str(p)).m == 1

    @pytest.mark.parametrize(
        "spec", ["kron:", "kron:edges=4", "kron:scale=x", "kron:whee=1"]
    )
    def test_bad_kron_spec(self, spec: str) -> None:
        with pytest.raises(DatasetError) as exc:
            resolve_dataset(spec)
        assert exc.value.reason == "spec"

    def test_dataset_is_frozen(self) -> None:
        ds = from_edges("t", [(0, 1)])
        with pytest.raises(AttributeError):
            ds.n = 5  # type: ignore[misc]
        assert isinstance(ds, GraphDataset)


class TestSharedSeams:
    """The one edge semantics, shared beyond the loaders (satellite 2)."""

    def test_adjacency_from_edges_same_semantics(self) -> None:
        from repro.algorithms.warshall import adjacency_from_edges

        # Duplicates and self-loops are tolerated (dedup is a no-op on
        # a boolean matrix; the diagonal is forced anyway).
        a = adjacency_from_edges(4, [(0, 1), (0, 1), (2, 2)])
        assert a[0, 1] and a.diagonal().all()
        assert not a[1, 0]

    def test_adjacency_from_edges_structured_errors(self) -> None:
        from repro.algorithms.warshall import adjacency_from_edges

        with pytest.raises(DatasetError) as exc:
            adjacency_from_edges(3, [(1, 7)])
        assert exc.value.reason == "vertex-out-of-range"
        with pytest.raises(DatasetError) as exc:
            adjacency_from_edges(3, [(-1, 0)])
        assert exc.value.reason == "vertex-out-of-range"
        # Still a ValueError for pre-existing callers.
        with pytest.raises(ValueError):
            adjacency_from_edges(3, [(0, 9)])

    def test_fpdg_rejects_self_loops(self) -> None:
        from repro.core.graph import DependenceGraph, GraphError

        dg = DependenceGraph("loop")
        x = dg.add_input(("in", 0))
        with pytest.raises(GraphError, match="self-loop"):
            dg.add_op(("op", 0), "mac", {"a": x, "b": x, "c": ("op", 0)})
