"""Cross-backend equivalence: the vector backend vs the reference
interpreter, over every shipped configuration and the error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.graph import GraphError
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.partitioner import partition_transitive_closure
from repro.arrays.cycle_sim import SimulationError, simulate
from repro.arrays.plan import partitioned_plan
from repro.arrays.vector_compile import (
    UnvectorizableGraphError,
    clear_compiled_cache,
    compile_plan,
    compiled_cache_info,
    get_compiled,
    plan_fingerprint,
)
from repro.arrays.vector_sim import (
    BACKENDS,
    dispatch_simulate,
    get_backend,
    resolve_backend,
    set_default_backend,
    simulate_vector,
)
from repro.lint.configs import SHIPPED_CONFIGS
from repro.resilience import FaultKind, FaultSpec, run_resilient_closure


def build(n, m, geometry="linear", aligned=True):
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    if geometry == "linear":
        plan = make_linear_gsets(gg, m, aligned=aligned)
    else:
        plan = make_mesh_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    return dg, partitioned_plan(plan, order)


def assert_identical(ref, vec) -> None:
    """Every observable SimResult field must match bit for bit."""
    assert vec.makespan == ref.makespan
    assert vec.cells == ref.cells
    assert vec.busy == ref.busy
    assert vec.useful == ref.useful
    assert vec.memory_words == ref.memory_words
    assert vec.memory_reads == ref.memory_reads
    assert vec.input_deadlines == ref.input_deadlines
    assert vec.input_cells == ref.input_cells
    assert vec.input_cell_of == ref.input_cell_of
    assert vec.violations == ref.violations
    assert set(vec.outputs) == set(ref.outputs)
    for nid, value in ref.outputs.items():
        assert vec.outputs[nid] == value, nid


class TestShippedConfigEquivalence:
    @pytest.mark.parametrize(
        "cfg", SHIPPED_CONFIGS, ids=[c.name for c in SHIPPED_CONFIGS]
    )
    def test_bit_identical_on_shipped_config(self, cfg) -> None:
        target = cfg.build()
        dg, ep = target.dg, target.exec_plan
        n = int(round(len(dg.inputs) ** 0.5))
        inputs = make_inputs(random_adjacency(n, 0.35, seed=7))
        ref = simulate(ep, dg, inputs)
        vec = simulate_vector(ep, dg, inputs)
        assert_identical(ref, vec)
        assert np.array_equal(ref.output_matrix(n), vec.output_matrix(n))


class TestErrorParity:
    def test_violations_match_on_tampered_plan(self) -> None:
        dg, ep = build(8, 3)
        victim = max(ep.fires, key=lambda nid: ep.fires[nid][1])
        cell, _t = ep.fires[victim]
        ep.fires[victim] = (cell, 0)  # fire before its operands exist
        inputs = make_inputs(random_adjacency(8, seed=3))
        ref = simulate(ep, dg, inputs)
        vec = simulate_vector(ep, dg, inputs)
        assert ref.violations and vec.violations == ref.violations

    def test_strict_raises_the_same_first_violation(self) -> None:
        dg, ep = build(8, 3)
        victim = max(ep.fires, key=lambda nid: ep.fires[nid][1])
        cell, _t = ep.fires[victim]
        ep.fires[victim] = (cell, 0)
        inputs = make_inputs(random_adjacency(8, seed=3))
        with pytest.raises(SimulationError) as ref_err:
            simulate(ep, dg, inputs, strict=True)
        with pytest.raises(SimulationError) as vec_err:
            simulate_vector(ep, dg, inputs, strict=True)
        assert str(vec_err.value) == str(ref_err.value)

    def test_missing_input_raises_the_same_error(self) -> None:
        dg, ep = build(6, 2)
        inputs = make_inputs(random_adjacency(6, seed=1))
        missing = sorted(inputs)[3]
        del inputs[missing]
        with pytest.raises(GraphError) as ref_err:
            simulate(ep, dg, inputs)
        with pytest.raises(GraphError) as vec_err:
            simulate_vector(ep, dg, inputs)
        assert str(vec_err.value) == str(ref_err.value)

    def test_uncovered_slot_node_raises_like_reference(self) -> None:
        from repro.core.semiring import BOOLEAN

        dg, ep = build(6, 2)
        victim = next(iter(ep.fires))
        del ep.fires[victim]
        inputs = make_inputs(random_adjacency(6, seed=1))
        with pytest.raises(GraphError, match="does not cover"):
            simulate(ep, dg, inputs)
        with pytest.raises(GraphError, match="does not cover"):
            compile_plan(ep, dg, BOOLEAN)


class TestFallbacks:
    def test_probe_falls_back_to_reference(self) -> None:
        from repro.obs import RecordingProbe

        dg, ep = build(6, 2)
        inputs = make_inputs(random_adjacency(6, seed=2))
        probe = RecordingProbe()
        vec = simulate_vector(ep, dg, inputs, probe=probe)
        assert probe.fires  # the probe really saw interpreter events
        assert_identical(simulate(ep, dg, inputs), vec)

    def test_rotation_graph_falls_back(self) -> None:
        from repro.algorithms.givens import givens_graph, givens_inputs
        from repro.core.semiring import REAL

        def group_cols(g, nid):
            if not g.kind(nid).occupies_slot:
                return None
            k, _, j = g.pos(nid)
            return (k, j)

        n = 6
        dg = givens_graph(n)
        gg = GGraph(dg, group_cols)
        plan = make_linear_gsets(gg, 2)
        ep = partitioned_plan(plan, schedule_gsets(plan), skew_unit=2)
        with pytest.raises(UnvectorizableGraphError):
            compile_plan(ep, dg, REAL)
        a = np.eye(n) + 0.1
        vec = simulate_vector(ep, dg, givens_inputs(a), REAL)
        ref = simulate(ep, dg, givens_inputs(a), REAL)
        assert vec.outputs == ref.outputs


class TestCompiledCache:
    def test_replays_hit_the_cache(self) -> None:
        clear_compiled_cache()
        dg, ep = build(7, 3)
        inputs = make_inputs(random_adjacency(7, seed=5))
        first = simulate_vector(ep, dg, inputs)
        info = compiled_cache_info()
        assert info == {"hits": 0, "misses": 1, "size": 1}
        again = simulate_vector(ep, dg, make_inputs(random_adjacency(7, seed=6)))
        info = compiled_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)
        assert first.makespan == again.makespan

    def test_fingerprint_distinguishes_plans_and_semirings(self) -> None:
        from repro.core.semiring import BOOLEAN, MIN_PLUS

        dg, ep = build(6, 2)
        dg2, ep2 = build(6, 3)
        fp = plan_fingerprint(ep, dg, BOOLEAN)
        assert fp == plan_fingerprint(ep, dg, BOOLEAN)
        assert fp != plan_fingerprint(ep2, dg2, BOOLEAN)
        assert fp != plan_fingerprint(ep, dg, MIN_PLUS)

    def test_get_compiled_returns_same_object(self) -> None:
        from repro.core.semiring import BOOLEAN

        clear_compiled_cache()
        dg, ep = build(6, 2)
        assert get_compiled(ep, dg, BOOLEAN) is get_compiled(ep, dg, BOOLEAN)


class TestBackendSelection:
    def test_registry_and_resolution(self) -> None:
        assert set(BACKENDS) == {"reference", "vector"}
        assert get_backend("vector") is simulate_vector
        with pytest.raises(ValueError, match="unknown simulator backend"):
            get_backend("gpu")
        assert resolve_backend("vector") == "vector"

    def test_set_default_backend_round_trips(self) -> None:
        prev = set_default_backend("vector")
        try:
            assert resolve_backend(None) == "vector"
        finally:
            set_default_backend(prev)

    def test_dispatch_simulate_matches_both_ways(self) -> None:
        dg, ep = build(6, 2)
        inputs = make_inputs(random_adjacency(6, seed=4))
        ref = dispatch_simulate(ep, dg, inputs, backend="reference")
        vec = dispatch_simulate(ep, dg, inputs, backend="vector")
        assert_identical(ref, vec)


class TestResilienceEdgeCasesOnVectorBackend:
    """The resilience edge cases, with fault-free attempts vectorized.

    Faulty attempts always fall back to the reference interpreter's
    injection seam; these check the recovery story is unchanged when
    everything else replays on the compiled backend.
    """

    @pytest.fixture(scope="class")
    def impl(self):
        return partition_transitive_closure(n=9, m=3)

    @pytest.fixture(scope="class")
    def matrix(self):
        rng = np.random.default_rng(13)
        return (rng.random((9, 9)) < 0.4).astype(np.int64)

    def test_fault_at_cycle_zero(self, impl, matrix) -> None:
        spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
        result = run_resilient_closure(
            impl, matrix, faults=[spec], record_metrics=False,
            backend="vector",
        )
        assert result.detections[0].sid == impl.order[0].sid
        assert result.repartitions == 1
        assert result.retired_cells == frozenset({0})
        assert result.recovered and result.oracle_ok

    def test_fault_in_final_gset(self, impl, matrix) -> None:
        last = impl.order[-1]
        members = []
        for gid in last.gids:
            members.extend(impl.gg.gnodes[gid].members)
        spec = FaultSpec(kind=FaultKind.TRANSIENT, node=members[0])
        result = run_resilient_closure(
            impl, matrix, faults=[spec], record_metrics=False,
            backend="vector",
        )
        assert [d.sid for d in result.detections] == [last.sid]
        assert result.retries == 1
        assert result.recovered and result.oracle_ok

    def test_backends_agree_on_recovery(self, impl, matrix) -> None:
        def spec():
            return FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=5)

        ref = run_resilient_closure(
            impl, matrix, faults=[spec()], record_metrics=False,
            backend="reference",
        )
        vec = run_resilient_closure(
            impl, matrix, faults=[spec()], record_metrics=False,
            backend="vector",
        )
        assert np.array_equal(ref.output_matrix(9), vec.output_matrix(9))
        assert ref.retired_cells == vec.retired_cells
        assert ref.retries == vec.retries
        assert [d.sid for d in ref.detections] == [d.sid for d in vec.detections]
