"""Tests for the derived cell programs (microcode view)."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.arrays.plan import fixed_array_plan, partitioned_plan
from repro.arrays.program import cell_programs, render_program


@pytest.fixture(scope="module")
def setup():
    n = 8
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    return n, dg, gg


def test_fixed_array_has_trivial_control(setup) -> None:
    """'No control complexity': every cell runs 1-2 patterns forever."""
    n, dg, gg = setup
    progs = cell_programs(fixed_array_plan(gg), dg)
    assert len(progs) == n * (n + 1)
    assert max(p.distinct_patterns for p in progs.values()) <= 2


def test_partitioned_linear_control_is_small_and_uniform(setup) -> None:
    n, dg, gg = setup
    plan = make_linear_gsets(gg, 3)
    progs = cell_programs(partitioned_plan(plan, schedule_gsets(plan)), dg)
    patterns = {cell: p.distinct_patterns for cell, p in progs.items()}
    assert max(patterns.values()) <= 10  # a tiny control store suffices
    # Interior cells share the same store size.
    assert len(set(patterns.values())) <= 2


def test_streams_cover_all_firings(setup) -> None:
    n, dg, gg = setup
    plan = make_linear_gsets(gg, 3)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    progs = cell_programs(ep, dg)
    assert sum(p.busy_cycles for p in progs.values()) == len(ep.fires)
    for p in progs.values():
        cycles = [ins.cycle for ins in p.instructions]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles)  # one instruction per cycle


def test_operand_origins_vocabulary(setup) -> None:
    n, dg, gg = setup
    plan = make_mesh_gsets(gg, 4)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    progs = cell_programs(ep, dg)
    origins = {
        origin
        for p in progs.values()
        for ins in p.instructions
        for _, origin in ins.sources
    }
    assert origins <= {"self", "mem", "host", "const", "N", "S", "E", "W"}
    assert "mem" in origins and "host" in origins


def test_linear_origins_are_chain_directions(setup) -> None:
    n, dg, gg = setup
    plan = make_linear_gsets(gg, 3)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    progs = cell_programs(ep, dg)
    origins = {
        origin
        for p in progs.values()
        for ins in p.instructions
        for _, origin in ins.sources
    }
    assert "L" in origins  # the b chains flow left-to-right
    assert origins <= {"self", "mem", "host", "const", "L", "R"}


def test_render_program(setup) -> None:
    n, dg, gg = setup
    progs = cell_programs(fixed_array_plan(gg), dg)
    text = render_program(progs[(0, 0)], limit=3)
    assert "distinct patterns" in text
    assert "t=" in text
    assert "more" in text  # truncated listing
