"""Tests for the hardware cost model."""

from __future__ import annotations

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.arrays.cost import fixed_array_cost, partitioned_array_cost


def _gg(n: int) -> GGraph:
    return GGraph(tc_regular(n), group_by_columns)


def test_linear_cost_counts() -> None:
    gg = _gg(10)
    plan = make_linear_gsets(gg, 4)
    cost = partitioned_array_cost(plan, schedule_gsets(plan))
    assert cost.cells == 4
    assert cost.links == 3  # chain of 4
    assert cost.memory_ports == 5  # m + 1
    assert cost.host_ports == 1
    assert cost.registers == 16
    assert cost.control_entries > 0


def test_mesh_cost_counts() -> None:
    gg = _gg(10)
    plan = make_mesh_gsets(gg, 4)
    cost = partitioned_array_cost(plan, schedule_gsets(plan))
    assert cost.cells == 4
    assert cost.links == 4  # 2x2 mesh: 2 horizontal + 2 vertical wires
    assert cost.memory_ports == 4  # 2 * sqrt(m)
    assert cost.host_ports == 2


def test_fixed_cost_counts() -> None:
    cost = fixed_array_cost(5, 6)
    assert cost.cells == 30
    assert cost.memory_ports == 0
    assert cost.host_ports == 6
    # Links: right links 5*(6-1); down-left links 4*5 (from cols 1..5).
    assert cost.links == 25 + 20
    assert cost.control_entries == 30  # one context per cell


def test_partitioned_much_cheaper_than_fixed() -> None:
    """The point of partitioning: m cells instead of n(n+1)."""
    n = 10
    gg = _gg(n)
    plan = make_linear_gsets(gg, 4)
    small = partitioned_array_cost(plan, schedule_gsets(plan))
    big = fixed_array_cost(n, n + 1)
    assert big.cells > 25 * small.cells
    assert big.registers > 25 * small.registers


def test_row_keys() -> None:
    cost = fixed_array_cost(3, 4)
    row = cost.row()
    for key in ("design", "cells", "links", "mem_ports", "control", "connections"):
        assert key in row
    assert cost.total_connections == cost.links + cost.memory_ports + cost.host_ports
