"""Tests for the fault-tolerance comparison (Sec. 5)."""

from __future__ import annotations

import pytest

from repro.arrays.faults import degraded_linear, degraded_mesh, degraded_throughput


def test_linear_degrades_gracefully(tc_gg8) -> None:
    rep = degraded_linear(tc_gg8, m=4, failures=1)
    assert rep.cells_used == 3
    assert rep.cells_lost == 1  # a bypass retires only the failed cell
    assert 0.5 < float(rep.retention) < 1.0


def test_mesh_loses_a_whole_row(tc_gg8) -> None:
    rep = degraded_mesh(tc_gg8, m=4, failures=1)
    assert rep.cells_used == 2
    assert rep.cells_lost == 2  # one fault retires sqrt(m) cells


def test_linear_beats_mesh_under_faults(tc_gg8) -> None:
    """The Sec. 5 conclusion, measured."""
    reports = degraded_throughput(tc_gg8, m=4, failures=1)
    assert reports["linear"].retention > reports["mesh"].retention


def test_zero_failures_identity(tc_gg8) -> None:
    rep = degraded_linear(tc_gg8, m=4, failures=0)
    assert rep.retention == 1
    repm = degraded_mesh(tc_gg8, m=4, failures=0)
    assert repm.retention == 1


def test_validation(tc_gg8) -> None:
    with pytest.raises(ValueError, match="failures"):
        degraded_linear(tc_gg8, m=3, failures=3)
    with pytest.raises(ValueError, match="square"):
        degraded_mesh(tc_gg8, m=5)
    with pytest.raises(ValueError, match="failures"):
        degraded_mesh(tc_gg8, m=4, failures=2)


def test_retention_and_slowdown_semantics(tc_gg8) -> None:
    """Retention is T_healthy/T_degraded (a throughput fraction <= 1)."""
    from fractions import Fraction

    rep = degraded_linear(tc_gg8, m=4, failures=1)
    assert rep.retention == Fraction(rep.healthy_time, rep.degraded_time)
    assert rep.retention <= 1
    assert rep.slowdown == Fraction(rep.degraded_time, rep.healthy_time)
    assert rep.slowdown >= 1
    assert rep.retention * rep.slowdown == 1
