"""Tests for chained-instance co-simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.graph import NodeKind, node_counts
from repro.arrays.pipeline import chain_plans, replicate_graph, run_chained_instances
from repro.arrays.plan import PlanError, fixed_array_plan, min_initiation_interval


@pytest.fixture(scope="module")
def fixed():
    n = 6
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    ep = fixed_array_plan(gg)
    return n, dg, ep, min_initiation_interval(ep)


class TestReplicateGraph:
    def test_disjoint_copies(self, fixed) -> None:
        n, dg, _, _ = fixed
        big = replicate_graph(dg, 3)
        base = node_counts(dg)
        bigc = node_counts(big)
        for kind in NodeKind:
            assert bigc[kind] == 3 * base[kind]
        big.validate()

    def test_copies_are_independent_semantically(self, fixed) -> None:
        n, dg, _, _ = fixed
        from repro.core.evaluate import evaluate

        big = replicate_graph(dg, 2)
        a0 = random_adjacency(n, seed=0)
        a1 = random_adjacency(n, seed=1)
        env = {}
        for nid, v in make_inputs(a0).items():
            env[("inst", 0, nid)] = v
        for nid, v in make_inputs(a1).items():
            env[("inst", 1, nid)] = v
        outs = evaluate(big, env)
        m0 = np.array(
            [[outs[("inst", 0, ("out", i, j))] for j in range(n)] for i in range(n)]
        )
        m1 = np.array(
            [[outs[("inst", 1, ("out", i, j))] for j in range(n)] for i in range(n)]
        )
        assert np.array_equal(m0, warshall(a0))
        assert np.array_equal(m1, warshall(a1))

    def test_rejects_zero_instances(self, fixed) -> None:
        _, dg, _, _ = fixed
        with pytest.raises(ValueError, match="at least one"):
            replicate_graph(dg, 0)


class TestChainPlans:
    def test_legal_interval_accepted(self, fixed) -> None:
        _, _, ep, delta = fixed
        combined = chain_plans(ep, 3, delta)
        assert len(combined.fires) == 3 * len(ep.fires)

    def test_too_small_interval_double_books(self, fixed) -> None:
        _, _, ep, delta = fixed
        with pytest.raises(PlanError, match="double-booked"):
            chain_plans(ep, 2, delta - 1)

    def test_non_positive_interval_rejected(self, fixed) -> None:
        _, _, ep, _ = fixed
        with pytest.raises(PlanError, match="positive"):
            chain_plans(ep, 2, 0)


class TestChainedRun:
    def test_all_instances_correct(self, fixed) -> None:
        n, dg, ep, delta = fixed
        mats = [random_adjacency(n, 0.3, seed=s) for s in range(3)]
        run = run_chained_instances(dg, ep, [make_inputs(a) for a in mats], delta)
        assert run.ok
        for i, a in enumerate(mats):
            assert np.array_equal(run.output_matrix(i, n), warshall(a))

    def test_makespan_slope_is_delta(self, fixed) -> None:
        n, dg, ep, delta = fixed
        envs = [make_inputs(random_adjacency(n, seed=s)) for s in range(4)]
        r1 = run_chained_instances(dg, ep, envs[:1], delta)
        r4 = run_chained_instances(dg, ep, envs, delta)
        assert r4.result.makespan - r1.result.makespan == 3 * delta

    def test_occupancy_grows_with_chaining(self, fixed) -> None:
        n, dg, ep, delta = fixed
        envs = [make_inputs(random_adjacency(n, seed=s)) for s in range(5)]
        occ1 = run_chained_instances(dg, ep, envs[:1], delta).result.occupancy
        occ5 = run_chained_instances(dg, ep, envs, delta).result.occupancy
        assert occ5 > occ1


class TestMeasuredInitiationInterval:
    def test_derived_from_makespan_growth(self, fixed) -> None:
        n, dg, ep, delta = fixed
        envs = [make_inputs(random_adjacency(n, seed=s)) for s in range(3)]
        run = run_chained_instances(dg, ep, envs, delta)
        assert run.base_makespan == ep.makespan
        assert run.measured_initiation_interval == pytest.approx(delta)

    def test_single_instance_reports_requested_delta(self, fixed) -> None:
        n, dg, ep, delta = fixed
        env = make_inputs(random_adjacency(n, seed=0))
        run = run_chained_instances(dg, ep, [env], delta)
        assert run.measured_initiation_interval == float(delta)

    def test_mis_chained_plan_is_caught(self, fixed) -> None:
        """Stretched offsets must show up in the measured interval."""
        from repro.arrays.cycle_sim import simulate
        from repro.arrays.pipeline import ChainedRun
        from repro.arrays.plan import ExecutionPlan

        n, dg, ep, delta = fixed
        k, stretch = 3, delta + 3
        big_dg = replicate_graph(dg, k)
        fires = {}
        for i in range(k):
            for nid, (cell, t) in ep.fires.items():
                fires[("inst", i, nid)] = (cell, t + i * stretch)
        bad = ExecutionPlan(
            topology=ep.topology, fires=fires, description="mis-chained"
        )
        bad.validate_exclusive()
        big_inputs = {}
        for i in range(k):
            env = make_inputs(random_adjacency(n, seed=i))
            for nid, v in env.items():
                big_inputs[("inst", i, nid)] = v
        res = simulate(bad, big_dg, big_inputs)
        run = ChainedRun(
            k=k, delta=delta, result=res, outputs=[],
            base_makespan=ep.makespan,
        )
        assert run.measured_initiation_interval == pytest.approx(stretch)
        assert run.measured_initiation_interval != delta
