"""Tests for array topologies."""

from __future__ import annotations

import pytest

from repro.arrays.topology import (
    fixed_grid_topology,
    linear_topology,
    mesh_topology,
)


class TestLinear:
    def test_cells_and_ports(self) -> None:
        t = linear_topology(5)
        assert t.m == 5
        assert t.memory_ports == 6  # m + 1 (Fig. 18)
        assert t.cells == (0, 1, 2, 3, 4)

    def test_neighbours(self) -> None:
        t = linear_topology(4)
        assert t.is_neighbor(1, 2) and t.is_neighbor(2, 1)
        assert t.is_neighbor(3, 3)
        assert not t.is_neighbor(0, 2)

    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="at least one"):
            linear_topology(0)


class TestMesh:
    def test_cells_and_ports(self) -> None:
        t = mesh_topology(3, 3)
        assert t.m == 9
        assert t.memory_ports == 6  # 2*sqrt(m) (Fig. 19)

    def test_neighbours_manhattan_one(self) -> None:
        t = mesh_topology(3, 3)
        assert t.is_neighbor((0, 0), (0, 1))
        assert t.is_neighbor((1, 1), (2, 1))
        assert not t.is_neighbor((0, 0), (1, 1))  # no diagonal links
        assert not t.is_neighbor((0, 0), (0, 2))

    def test_has_cell(self) -> None:
        t = mesh_topology(2, 3)
        assert t.has_cell((1, 2))
        assert not t.has_cell((2, 0))

    def test_rejects_bad_shape(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            mesh_topology(0, 3)


class TestFixedGrid:
    def test_links_follow_g_edges(self) -> None:
        t = fixed_grid_topology(4, 5)
        assert t.m == 20
        assert t.is_neighbor((0, 0), (0, 1))  # right (horizontal path)
        assert t.is_neighbor((0, 1), (1, 0))  # down-left (next level)
        assert not t.is_neighbor((0, 0), (1, 0))  # no straight-down link
        assert not t.is_neighbor((0, 1), (0, 0))  # links are directed

    def test_host_ports(self) -> None:
        assert fixed_grid_topology(4, 5).memory_ports == 5
