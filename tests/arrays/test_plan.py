"""Tests for execution plans (cell/cycle assignment, initiation intervals)."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.arrays.plan import (
    ExecutionPlan,
    PlanError,
    check_initiation_interval,
    fixed_array_plan,
    fixed_linear_plan,
    min_initiation_interval,
    partitioned_plan,
)
from repro.arrays.topology import linear_topology


def tc_gg(n: int) -> GGraph:
    return GGraph(tc_regular(n), group_by_columns)


class TestPartitionedPlan:
    def test_covers_every_slot_node(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        slots = sum(gn.comp_time for gn in tc_gg8.gnodes.values())
        assert len(ep.fires) == slots
        assert ep.busy_cycles() == slots

    def test_no_stalls_in_paper_regime(self) -> None:
        gg = tc_gg(12)
        for make in (
            lambda: make_linear_gsets(gg, 3),
            lambda: make_mesh_gsets(gg, 4),
        ):
            plan = make()
            ep = partitioned_plan(plan, schedule_gsets(plan))
            assert ep.stall_cycles == 0  # "no overhead due to partitioning"

    def test_small_problem_may_stall_but_is_flagged(self) -> None:
        gg = tc_gg(4)
        plan = make_mesh_gsets(gg, 4)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        assert ep.stall_cycles >= 0  # stalls are measured, not hidden

    def test_set_starts_monotone(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        starts = [t for _, t in ep.set_starts]
        assert starts == sorted(starts)

    def test_makespan(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 8, aligned=False)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        # last set start + skew of last cell + slots
        assert ep.makespan >= 8 * 9 * 8 // 8

    def test_unknown_geometry_rejected(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        plan.geometry = "torus"
        with pytest.raises(PlanError, match="unknown plan geometry"):
            partitioned_plan(plan, plan.gsets)


class TestExclusivity:
    def test_double_booking_detected(self) -> None:
        topo = linear_topology(2)
        ep = ExecutionPlan(topo, {"a": (0, 3), "b": (0, 3)})
        with pytest.raises(PlanError, match="double-booked"):
            ep.validate_exclusive()

    def test_unknown_cell_detected(self) -> None:
        topo = linear_topology(2)
        ep = ExecutionPlan(topo, {"a": (7, 0)})
        with pytest.raises(PlanError, match="unknown cell"):
            ep.validate_exclusive()


class TestFixedArrayPlans:
    def test_fixed_array_initiation_interval_is_n(self) -> None:
        """Fig. 17: throughput 1/n — a new problem every n cycles."""
        for n in (5, 8):
            ep = fixed_array_plan(tc_gg(n))
            assert min_initiation_interval(ep) == n

    def test_fixed_linear_initiation_interval(self) -> None:
        """Linear collapse: throughput 1/(n(n+1)), fully utilized cells."""
        n = 6
        ep = fixed_linear_plan(tc_gg(n))
        assert min_initiation_interval(ep) == n * (n + 1)

    def test_fixed_linear_requires_uniform_times(self) -> None:
        from repro.algorithms.lu import lu_ggraph

        with pytest.raises(PlanError, match="uniform"):
            fixed_linear_plan(lu_ggraph(5))

    def test_instance_offset_shifts_times(self) -> None:
        gg = tc_gg(5)
        e0 = fixed_array_plan(gg, instance_offset=0)
        e1 = fixed_array_plan(gg, instance_offset=5)
        for nid, (cell, t) in e0.fires.items():
            assert e1.fires[nid] == (cell, t + 5)


class TestInitiationInterval:
    def test_check_rejects_collisions(self) -> None:
        topo = linear_topology(1)
        ep = ExecutionPlan(topo, {"a": (0, 0), "b": (0, 3)})
        assert check_initiation_interval(ep, 2)
        assert not check_initiation_interval(ep, 3)  # 0 ≡ 3 (mod 3)
        assert not check_initiation_interval(ep, 0)

    def test_min_interval_lower_bound_is_busiest_cell(self) -> None:
        topo = linear_topology(1)
        ep = ExecutionPlan(topo, {"a": (0, 0), "b": (0, 1), "c": (0, 2)})
        assert min_initiation_interval(ep) == 3

    def test_min_interval_unreachable(self) -> None:
        topo = linear_topology(1)
        ep = ExecutionPlan(topo, {"a": (0, 0), "b": (0, 2)})
        with pytest.raises(PlanError, match="no feasible"):
            min_initiation_interval(ep, upper=1)
