"""The bit-packed boolean replay vs the reference interpreter.

The vector backend proves a compiled boolean plan closure-shaped
(:func:`repro.arrays.vector_compile._detect_bitpack`) and then replays
it as a packed Warshall sweep.  These tests pin the proof obligations:
the replay must be bit-identical at the ``SimResult`` level for
*arbitrary* boolean inputs (not just diagonal-forced closure inputs),
and the detector must refuse anything that is not exactly the closure
recurrence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.partitioner import partition_transitive_closure
from repro.core.graph import GraphError
from repro.core.semiring import BOOLEAN, MIN_PLUS
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan
from repro.arrays.vector_compile import compile_plan, get_compiled
from repro.arrays.vector_sim import simulate_vector

from test_vector_sim import assert_identical, build


def input_map(dg, a: np.ndarray) -> dict:
    """Raw inputs from a matrix — no diagonal forcing, unlike make_inputs."""
    return {("in", i, j): bool(a[i, j]) for i in range(a.shape[0])
            for j in range(a.shape[1])}


def special_matrices(n: int) -> dict[str, np.ndarray]:
    disconnected = np.zeros((n, n), dtype=np.bool_)
    h = n // 2
    disconnected[:h, :h] = True
    disconnected[h:, h:] = True
    single = np.zeros((n, n), dtype=np.bool_)
    single[0, min(1, n - 1)] = True
    return {
        "empty": np.zeros((n, n), dtype=np.bool_),
        "all_ones": np.ones((n, n), dtype=np.bool_),
        "identity": np.eye(n, dtype=np.bool_),
        "disconnected": disconnected,
        "single_edge": single,
    }


class TestBitpackDetection:
    def test_boolean_closure_plan_is_proven(self) -> None:
        dg, ep = build(7, 3)
        compiled = get_compiled(ep, dg, BOOLEAN)
        assert compiled.bitpack is not None
        assert compiled.bitpack.n == 7

    def test_mesh_plan_is_proven(self) -> None:
        dg, ep = build(8, 4, geometry="mesh")
        assert get_compiled(ep, dg, BOOLEAN).bitpack is not None

    def test_min_plus_is_not(self) -> None:
        dg, ep = build(6, 3)
        assert compile_plan(ep, dg, MIN_PLUS).bitpack is None

    def test_detection_counter_increments(self) -> None:
        from repro.obs.metrics import get_registry

        dg = tc_regular(5)
        gg = GGraph(dg, group_by_columns)
        plan = make_linear_gsets(gg, 2)
        ep = partitioned_plan(plan, schedule_gsets(plan, "vertical"))
        counter = get_registry().counter(
            "repro_vector_bitpack_plans_total",
            "Compiled plans proven closure-shaped (bit-packed replay)",
        )
        before = counter.value()
        assert compile_plan(ep, dg, BOOLEAN).bitpack is not None
        assert counter.value() == before + 1


class TestBitpackEquivalence:
    @pytest.mark.parametrize("case", sorted(special_matrices(7)))
    def test_special_inputs_bit_identical(self, case: str) -> None:
        n = 7
        dg, ep = build(n, 3)
        inputs = input_map(dg, special_matrices(n)[case])
        ref = simulate(ep, dg, inputs)
        vec = simulate_vector(ep, dg, inputs)
        assert_identical(ref, vec)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_raw_inputs(self, seed: int) -> None:
        # No forced diagonal: the raw recurrence itself must agree.
        n = 9
        rng = np.random.default_rng(seed)
        a = rng.random((n, n)) < 0.3
        dg, ep = build(n, 3)
        inputs = input_map(dg, a)
        assert_identical(simulate(ep, dg, inputs),
                         simulate_vector(ep, dg, inputs))

    def test_closure_inputs_on_partitioned_impl(self) -> None:
        from repro.algorithms.warshall import random_adjacency, warshall

        for geometry, n, m in (("linear", 10, 5), ("mesh", 8, 4)):
            impl = partition_transitive_closure(n=n, m=m, geometry=geometry)
            a = random_adjacency(n, seed=3)
            inputs = make_inputs(a)
            ref = simulate(impl.exec_plan, impl.dg, inputs)
            vec = simulate_vector(impl.exec_plan, impl.dg, inputs)
            assert_identical(ref, vec)
            assert np.array_equal(vec.output_matrix(n), warshall(a))

    def test_outputs_are_bool_scalars(self) -> None:
        dg, ep = build(6, 3)
        vec = simulate_vector(ep, dg, input_map(dg, np.eye(6, dtype=np.bool_)))
        assert all(isinstance(v, np.bool_) for v in vec.outputs.values())

    def test_strict_mode_parity(self) -> None:
        # Strict replay goes through the same entry checks before the
        # packed path; a missing input must raise identically.
        dg, ep = build(6, 3)
        inputs = input_map(dg, np.zeros((6, 6), dtype=np.bool_))
        del inputs[("in", 0, 0)]
        with pytest.raises(GraphError):
            simulate(ep, dg, inputs)
        with pytest.raises(GraphError):
            simulate_vector(ep, dg, inputs)


class TestAgainstPackedKernel:
    def test_replay_matches_closure_words(self) -> None:
        # Full-circle: FPDG replay == host-level packed kernel (raw
        # recurrence, no diagonal forcing) on the same matrix.
        from repro.core.bitmatrix import closure_words, pack_rows, unpack_rows

        n = 11
        rng = np.random.default_rng(4)
        a = rng.random((n, n)) < 0.25
        dg, ep = build(n, 4)
        vec = simulate_vector(ep, dg, input_map(dg, a))
        expected = unpack_rows(closure_words(pack_rows(a), n), n)
        assert np.array_equal(vec.output_matrix(n), expected)
