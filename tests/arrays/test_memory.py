"""Tests for the external-memory subsystem accounting."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.metrics import schedule_memory_traffic
from repro.arrays.memory import analyze_memory
from repro.arrays.plan import fixed_array_plan, partitioned_plan


@pytest.fixture(scope="module")
def setup():
    n = 9
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    return n, dg, gg


def test_writes_match_schedule_traffic(setup) -> None:
    n, dg, gg = setup
    plan = make_linear_gsets(gg, 3)
    order = schedule_gsets(plan)
    ep = partitioned_plan(plan, order)
    rep = analyze_memory(ep, dg)
    assert rep.words_written == schedule_memory_traffic(plan, order)
    assert rep.words_read >= rep.words_written  # every word read >= once


def test_fixed_array_needs_no_memory(setup) -> None:
    n, dg, gg = setup
    rep = analyze_memory(fixed_array_plan(gg), dg)
    assert rep.words_written == 0
    assert rep.peak_occupancy == 0
    assert rep.ports_used == 0


def test_peak_occupancy_bounded_by_writes(setup) -> None:
    n, dg, gg = setup
    plan = make_linear_gsets(gg, 3)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    rep = analyze_memory(ep, dg)
    assert 0 < rep.peak_occupancy <= rep.words_written


def test_linear_ports_within_paper_count(setup) -> None:
    """Traffic uses at most the m+1 taps of Fig. 18."""
    n, dg, gg = setup
    m = 3
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    rep = analyze_memory(ep, dg)
    assert rep.ports_used <= m + 1
    assert set(rep.port_writes) <= set(range(m))


def test_mesh_ports_are_row_taps(setup) -> None:
    """Mesh traffic goes through the 2*sqrt(m) row-end taps of Fig. 19."""
    n, dg, gg = setup
    plan = make_mesh_gsets(gg, 4)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    rep = analyze_memory(ep, dg)
    sides = {p[0] for p in rep.port_writes}
    assert sides <= {"L", "R"}
    assert rep.ports_used <= 4  # 2 * sqrt(4)


def test_mesh_concentrates_port_load(setup) -> None:
    """Fewer mesh taps -> each carries more words than a linear tap."""
    n, dg, gg = setup
    lin = analyze_memory(
        partitioned_plan(
            make_linear_gsets(gg, 4), schedule_gsets(make_linear_gsets(gg, 4))
        ),
        dg,
    )
    mesh = analyze_memory(
        partitioned_plan(
            make_mesh_gsets(gg, 4), schedule_gsets(make_mesh_gsets(gg, 4))
        ),
        dg,
    )
    lin_avg = (lin.words_written + lin.words_read) / max(1, lin.ports_used)
    mesh_avg = (mesh.words_written + mesh.words_read) / max(1, mesh.ports_used)
    assert lin_avg > 0 and mesh_avg > 0
