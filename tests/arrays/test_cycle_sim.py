"""Tests for the cycle-level simulator — the reproduction's ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.graph import GraphError
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.metrics import evaluate_schedule, schedule_memory_traffic
from repro.arrays.cycle_sim import SimResult, SimulationError, simulate
from repro.arrays.plan import (
    fixed_array_plan,
    fixed_linear_plan,
    partitioned_plan,
)


def build(n, m, geometry="linear", aligned=True):
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    if geometry == "linear":
        plan = make_linear_gsets(gg, m, aligned=aligned)
    else:
        plan = make_mesh_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    return dg, gg, plan, order, partitioned_plan(plan, order)


class TestCorrectness:
    @given(
        n=st.integers(4, 9),
        m=st.integers(1, 5),
        seed=st.integers(0, 100),
        aligned=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_linear_array_computes_closure(self, n, m, seed, aligned) -> None:
        dg, _, _, _, ep = build(n, m, aligned=aligned)
        a = random_adjacency(n, 0.35, seed=seed)
        res = simulate(ep, dg, make_inputs(a))
        assert res.ok, res.violations[:3]
        assert np.array_equal(res.output_matrix(n), warshall(a))

    @given(n=st.integers(5, 9), seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_mesh_array_computes_closure(self, n, seed) -> None:
        dg, _, _, _, ep = build(n, 4, geometry="mesh")
        a = random_adjacency(n, 0.35, seed=seed)
        res = simulate(ep, dg, make_inputs(a))
        assert res.ok
        assert np.array_equal(res.output_matrix(n), warshall(a))

    def test_fixed_arrays_compute_closure(self) -> None:
        n = 7
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        a = random_adjacency(n, seed=2)
        for mk in (fixed_array_plan, fixed_linear_plan):
            res = simulate(mk(gg), dg, make_inputs(a))
            assert res.ok
            assert np.array_equal(res.output_matrix(n), warshall(a))
            assert res.memory_words == 0  # everything neighbour-to-neighbour


class TestMeasurements:
    def test_memory_matches_schedule_prediction(self) -> None:
        for geometry in ("linear", "mesh"):
            dg, gg, plan, order, ep = build(9, 4 if geometry == "mesh" else 3,
                                            geometry=geometry)
            res = simulate(ep, dg, make_inputs(random_adjacency(9, seed=1)))
            assert res.memory_words == schedule_memory_traffic(plan, order)
            assert res.memory_reads >= res.memory_words

    def test_occupancy_matches_report(self) -> None:
        """Cycle-measured occupancy ~ schedule-level occupancy."""
        dg, gg, plan, order, ep = build(10, 5, aligned=False)
        res = simulate(ep, dg, make_inputs(random_adjacency(10, seed=3)))
        rep = evaluate_schedule(plan, order)
        # The cycle sim adds at most the skew drain (m-1 cycles).
        assert rep.total_time <= res.makespan <= rep.total_time + plan.m - 1
        assert abs(float(res.occupancy) - float(rep.occupancy)) < 0.1

    def test_useful_equals_computed_ops(self) -> None:
        n = 8
        dg, _, _, _, ep = build(n, 4)
        res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=4)))
        assert res.useful == n * (n - 1) * (n - 2)

    def test_input_deadlines_cover_all_inputs(self) -> None:
        n = 7
        dg, _, _, _, ep = build(n, 4)
        res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=5)))
        assert len(res.input_deadlines) == n * n
        assert set(res.input_cell_of) == set(res.input_deadlines)
        curve = res.io_demand_curve()
        assert curve[-1][1] == n * n

    def test_host_bandwidth_accessors(self) -> None:
        n, m = 12, 3
        dg, _, _, _, ep = build(n, m)
        res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=6)))
        avg = float(res.average_host_bandwidth())
        assert 0 < avg <= m / n + 0.05
        assert res.required_host_bandwidth(preload=n * m) <= res.required_host_bandwidth()


def make_result(**overrides) -> SimResult:
    base = dict(
        outputs={},
        makespan=0,
        cells=0,
        busy=0,
        useful=0,
        memory_words=0,
        memory_reads=0,
        input_deadlines={},
        input_cells=set(),
    )
    base.update(overrides)
    return SimResult(**base)


class TestDegenerateResults:
    """Empty/degenerate runs must yield ratios of 0, not ZeroDivisionError."""

    def test_zero_makespan_and_cells(self) -> None:
        from fractions import Fraction

        res = make_result()
        assert res.utilization == Fraction(0)
        assert res.occupancy == Fraction(0)
        assert res.average_host_bandwidth() == Fraction(0)

    def test_zero_makespan_nonzero_cells(self) -> None:
        from fractions import Fraction

        res = make_result(cells=4)
        assert res.utilization == Fraction(0)
        assert res.occupancy == Fraction(0)

    def test_zero_cells_nonzero_makespan(self) -> None:
        from fractions import Fraction

        res = make_result(makespan=10)
        assert res.utilization == Fraction(0)
        assert res.occupancy == Fraction(0)

    def test_no_inputs_means_empty_curve_and_zero_rate(self) -> None:
        from fractions import Fraction

        res = make_result(makespan=10, cells=3)
        assert res.io_demand_curve() == []
        assert res.required_host_bandwidth() == Fraction(0)

    def test_preload_larger_than_total_words(self) -> None:
        from fractions import Fraction

        res = make_result(
            makespan=10, cells=3,
            input_deadlines={"a": 2, "b": 5, "c": 7},
        )
        assert res.required_host_bandwidth(preload=99) == Fraction(0)
        assert res.required_host_bandwidth(preload=3) == Fraction(0)

    def test_deadline_at_cycle_zero_must_be_preloaded(self) -> None:
        """Words due at t=0 cannot be streamed at any finite rate; the
        bandwidth bound only covers t > 0 deadlines, so the t=0 word
        is implicitly part of the preload."""
        from fractions import Fraction

        res = make_result(
            makespan=8, cells=2,
            input_deadlines={"x": 0, "y": 4},
        )
        curve = res.io_demand_curve()
        assert curve == [(0, 1), (4, 2)]
        # Only the t=4 deadline constrains the streaming rate:
        # 2 cumulative words by cycle 4 -> 1/2 word/cycle.
        assert res.required_host_bandwidth() == Fraction(2, 4)
        # With one word preloaded the rate drops to 1/4.
        assert res.required_host_bandwidth(preload=1) == Fraction(1, 4)


class TestViolationDetection:
    def test_tampered_plan_is_caught(self) -> None:
        dg, _, _, _, ep = build(6, 3)
        # Fire one node a cycle too early.
        victim = next(iter(ep.fires))
        cell, t = ep.fires[victim]
        consumers = [nid for nid in dg.g.successors(victim) if nid in ep.fires]
        if consumers:
            c0 = consumers[0]
            ccell, ct = ep.fires[c0]
            ep.fires[victim] = (cell, ct + 5)  # producer now fires after use
            res = simulate(ep, dg, make_inputs(random_adjacency(6, seed=0)))
            assert not res.ok
            assert any(v.producer == victim for v in res.violations)

    def test_strict_mode_raises(self) -> None:
        dg, _, _, _, ep = build(6, 3)
        victim = next(
            nid for nid in ep.fires if list(dg.g.successors(nid))
        )
        cons = next(c for c in dg.g.successors(victim) if c in ep.fires)
        ep.fires[victim] = (ep.fires[victim][0], ep.fires[cons][1] + 9)
        with pytest.raises(GraphError, match="violation"):
            simulate(ep, dg, make_inputs(random_adjacency(6, seed=0)), strict=True)

    def test_strict_mode_carries_structured_violation(self) -> None:
        """SimulationError exposes the Violation object, not just a string."""
        dg, _, _, _, ep = build(6, 3)
        victim = next(
            nid for nid in ep.fires if list(dg.g.successors(nid))
        )
        cons = next(c for c in dg.g.successors(victim) if c in ep.fires)
        ep.fires[victim] = (ep.fires[victim][0], ep.fires[cons][1] + 9)
        with pytest.raises(SimulationError) as exc:
            simulate(ep, dg, make_inputs(random_adjacency(6, seed=0)), strict=True)
        v = exc.value.violation
        assert v.producer == victim
        assert v.slack < 0
        assert v.kind in ("timing", "memory-timing")
        assert str(v) == str(exc.value)
        # Backwards compatible: it still *is* a GraphError.
        assert isinstance(exc.value, GraphError)

    def test_missing_plan_entry_raises(self) -> None:
        dg, _, _, _, ep = build(5, 3)
        victim = next(iter(ep.fires))
        del ep.fires[victim]
        with pytest.raises(GraphError, match="does not cover"):
            simulate(ep, dg, make_inputs(random_adjacency(5, seed=0)))

    def test_missing_input_raises(self) -> None:
        dg, _, _, _, ep = build(5, 3)
        with pytest.raises(GraphError, match="no value supplied"):
            simulate(ep, dg, {})

    def test_violation_str(self) -> None:
        from repro.arrays.cycle_sim import Violation

        v = Violation(node="x", role="a", producer="y", kind="timing", slack=-2)
        assert "late by 2" in str(v)
