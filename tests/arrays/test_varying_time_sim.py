"""Cycle-level partitioned execution of the Sec. 4.3 algorithms.

Fig. 22's comparison is usually made analytically; here LU, Faddeev and
Givens QR actually *run* on the simulated linear and mesh arrays, with
numeric results checked against the numpy references.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.faddeev import faddeev_graph, faddeev_inputs
from repro.algorithms.givens import givens_graph, givens_inputs
from repro.algorithms.lu import lu_graph, lu_group_by_columns, lu_inputs, lu_reference
from repro.core.ggraph import GGraph
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.semiring import REAL
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan


def _group_cols(g, nid):
    if not g.kind(nid).occupies_slot:
        return None
    k, _, j = g.pos(nid)
    return (k, j)


class TestPartitionedLU:
    @given(n=st.integers(4, 9), m=st.integers(2, 4), seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_linear_array_factorizes(self, n, m, seed) -> None:
        rng = np.random.default_rng(seed)
        a = rng.random((n, n)) + n * np.eye(n)
        dg = lu_graph(n)
        gg = GGraph(dg, lu_group_by_columns)
        plan = make_linear_gsets(gg, m)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        res = simulate(ep, dg, lu_inputs(a), REAL)
        assert res.ok
        lo, up = np.eye(n), np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i > j:
                    lo[i, j] = res.outputs[("L", i, j)]
                else:
                    up[i, j] = res.outputs[("U", i, j)]
        lr, ur = lu_reference(a)
        assert np.allclose(lo, lr) and np.allclose(up, ur)

    def test_mesh_array_factorizes(self) -> None:
        n = 8
        rng = np.random.default_rng(1)
        a = rng.random((n, n)) + n * np.eye(n)
        dg = lu_graph(n)
        gg = GGraph(dg, lu_group_by_columns)
        plan = make_mesh_gsets(gg, 4)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        res = simulate(ep, dg, lu_inputs(a), REAL)
        assert res.ok
        lo = np.eye(n)
        up = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i > j:
                    lo[i, j] = res.outputs[("L", i, j)]
                else:
                    up[i, j] = res.outputs[("U", i, j)]
        assert np.allclose(lo @ up, a)

    def test_stall_overhead_is_tiny(self) -> None:
        """LU's back-to-back pivot dependence costs at most a few cycles."""
        n = 12
        dg = lu_graph(n)
        gg = GGraph(dg, lu_group_by_columns)
        plan = make_linear_gsets(gg, 3)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        assert ep.stall_cycles <= 2


class TestPartitionedFaddeev:
    def test_linear_array_computes_schur(self) -> None:
        n = 5
        rng = np.random.default_rng(2)
        A = rng.random((n, n)) + n * np.eye(n)
        B, C, D = (rng.random((n, n)) for _ in range(3))
        dg = faddeev_graph(n)
        gg = GGraph(dg, _group_cols)
        plan = make_linear_gsets(gg, 3)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        res = simulate(ep, dg, faddeev_inputs(A, B, C, D), REAL)
        assert res.ok and ep.stall_cycles == 0
        got = np.array(
            [[res.outputs[("out", i, j)] for j in range(n)] for i in range(n)]
        )
        assert np.allclose(got, D + C @ np.linalg.inv(A) @ B)


class TestPartitionedGivens:
    @pytest.mark.parametrize("n,m", [(6, 2), (8, 3)])
    def test_linear_array_triangularizes(self, n, m) -> None:
        rng = np.random.default_rng(3)
        a = rng.random((n, n)) + np.eye(n)
        dg = givens_graph(n)
        gg = GGraph(dg, _group_cols)
        plan = make_linear_gsets(gg, m)
        # Givens packs a rotate-apply pair per chain position: skew 2.
        ep = partitioned_plan(plan, schedule_gsets(plan), skew_unit=2)
        res = simulate(ep, dg, givens_inputs(a), REAL)
        assert res.ok
        R = np.zeros((n, n))
        for i in range(n):
            for j in range(i, n):
                R[i, j] = res.outputs[("R", i, j)]
        assert np.allclose(R.T @ R, a.T @ a)

    def test_unit_skew_is_caught(self) -> None:
        """With skew 1 the rotation chain misses by a cycle — detected."""
        n = 6
        dg = givens_graph(n)
        gg = GGraph(dg, _group_cols)
        plan = make_linear_gsets(gg, 2)
        ep = partitioned_plan(plan, schedule_gsets(plan), skew_unit=1)
        res = simulate(ep, dg, givens_inputs(np.eye(n) + 0.1), REAL)
        assert not res.ok
        assert any(v.kind == "timing" for v in res.violations)

    def test_bad_skew_rejected(self) -> None:
        from repro.arrays.plan import PlanError

        gg = GGraph(givens_graph(4), _group_cols)
        plan = make_linear_gsets(gg, 2)
        with pytest.raises(PlanError, match="skew_unit"):
            partitioned_plan(plan, schedule_gsets(plan), skew_unit=0)
