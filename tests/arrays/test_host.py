"""Tests for the Fig. 21 R-block host chain."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.arrays.cycle_sim import simulate
from repro.arrays.host import RBlockReport, column_of_cell, simulate_rblock_chain
from repro.arrays.plan import partitioned_plan


@pytest.fixture(scope="module")
def sim_result():
    n, m = 12, 4
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan, "vertical"))
    return simulate(ep, dg, make_inputs(random_adjacency(n, seed=0)))


def test_full_rate_feasible(sim_result) -> None:
    rep = simulate_rblock_chain(sim_result, 1)
    assert rep.feasible
    assert rep.words == 12 * 12


def test_low_rate_still_feasible_with_preload(sim_result) -> None:
    """At m/n words/cycle the chain works — the host just starts earlier."""
    rep_full = simulate_rblock_chain(sim_result, 1)
    rep_slow = simulate_rblock_chain(sim_result, Fraction(4, 12))
    assert rep_slow.feasible
    assert rep_slow.start_time < rep_full.start_time
    assert rep_slow.preload_words >= rep_full.preload_words


def test_r_memory_grows_as_rate_drops(sim_result) -> None:
    fast = simulate_rblock_chain(sim_result, 1)
    slow = simulate_rblock_chain(sim_result, Fraction(1, 6))
    assert slow.max_r_memory >= fast.max_r_memory


def test_fixed_start_can_be_infeasible(sim_result) -> None:
    rep = simulate_rblock_chain(sim_result, Fraction(1, 4), start_time=10**6)
    assert not rep.feasible


def test_rate_validation(sim_result) -> None:
    with pytest.raises(ValueError, match="positive"):
        simulate_rblock_chain(sim_result, 0)
    with pytest.raises(ValueError, match="one word per cycle"):
        simulate_rblock_chain(sim_result, 2)


def test_empty_run() -> None:
    from repro.arrays.cycle_sim import SimResult

    empty = SimResult(
        outputs={}, makespan=0, cells=1, busy=0, useful=0,
        memory_words=0, memory_reads=0, input_deadlines={}, input_cells=set(),
    )
    rep = simulate_rblock_chain(empty, 1)
    assert rep.feasible and rep.words == 0 and rep.max_r_memory == 0


def test_column_of_cell() -> None:
    assert column_of_cell(3) == 3
    assert column_of_cell((2, 5)) == 5


def test_preload_words_zero_when_start_nonnegative() -> None:
    rep = RBlockReport(
        host_rate=Fraction(1), feasible=True, start_time=5,
        words=10, max_r_memory=1, last_issue=20,
    )
    assert rep.preload_words == 0
