"""Tests for the simulator probe protocol and derived reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.obs import (
    MetricsRegistry,
    NullProbe,
    Probe,
    RecordingProbe,
    io_demand_curve,
    memory_traffic_per_cycle,
    occupancy_timeline,
    probe_chrome_events,
    register_expected_metrics,
    register_sim_metrics,
)


def build(n=7, m=3):
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    return dg, plan, order, partitioned_plan(plan, order)


@pytest.fixture(scope="module")
def probed_run():
    n = 7
    dg, plan, order, ep = build(n)
    a = random_adjacency(n, seed=3)
    probe = RecordingProbe()
    res = simulate(ep, dg, make_inputs(a), probe=probe)
    assert np.array_equal(res.output_matrix(n), warshall(a))
    return n, res, probe


class TestProbeProtocol:
    def test_recording_probe_satisfies_protocol(self) -> None:
        assert isinstance(RecordingProbe(), Probe)
        assert isinstance(NullProbe(), Probe)

    def test_probe_does_not_change_results(self) -> None:
        n = 6
        dg, _, _, ep = build(n)
        a = random_adjacency(n, seed=1)
        bare = simulate(ep, dg, make_inputs(a))
        probed = simulate(ep, dg, make_inputs(a), probe=RecordingProbe())
        nulled = simulate(ep, dg, make_inputs(a), probe=NullProbe())
        for res in (probed, nulled):
            assert res.makespan == bare.makespan
            assert res.memory_words == bare.memory_words
            assert res.outputs == bare.outputs

    def test_fires_match_busy_count(self, probed_run) -> None:
        _, res, probe = probed_run
        assert len(probe.fires) == res.busy

    def test_operand_census_accounts_for_memory_reads(self, probed_run) -> None:
        _, res, probe = probed_run
        census = probe.operand_source_census()
        assert census["memory"] == res.memory_reads
        assert census["input"] >= len(res.input_deadlines)

    def test_violation_events(self) -> None:
        dg, _, _, ep = build(6)
        victim = next(nid for nid in ep.fires if list(dg.g.successors(nid)))
        cons = next(c for c in dg.g.successors(victim) if c in ep.fires)
        ep.fires[victim] = (ep.fires[victim][0], ep.fires[cons][1] + 9)
        probe = RecordingProbe()
        res = simulate(ep, dg, make_inputs(random_adjacency(6, seed=0)),
                       probe=probe)
        assert not res.ok
        assert probe.violations == res.violations


class TestDerivedReports:
    def test_io_demand_curve_matches_simresult(self, probed_run) -> None:
        _, res, probe = probed_run
        assert io_demand_curve(probe) == res.io_demand_curve()

    def test_occupancy_timeline_covers_all_cells(self, probed_run) -> None:
        _, res, probe = probed_run
        lanes = occupancy_timeline(probe)
        assert sum(len(v) for v in lanes.values()) == res.busy
        for lane in lanes.values():
            cycles = [c for c, _ in lane]
            assert cycles == sorted(cycles)

    def test_memory_traffic_totals_match(self, probed_run) -> None:
        _, res, probe = probed_run
        curve = memory_traffic_per_cycle(probe)
        assert sum(w for _, w in curve) == res.memory_reads

    def test_chrome_events_schema(self, probed_run) -> None:
        _, res, probe = probed_run
        events = probe_chrome_events(probe)
        fires = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(fires) == res.busy
        assert {e["name"] for e in counters} == {
            "fires/cycle", "memory reads/cycle", "host words needed (cum.)",
        }
        for ev in events:
            assert {"name", "ph", "pid"} <= set(ev)


class TestRegistryBridges:
    def test_register_sim_metrics(self, probed_run) -> None:
        n, res, _ = probed_run
        reg = MetricsRegistry()
        register_sim_metrics(reg, res, labels={"n": n})
        assert reg.gauge("repro_sim_makespan_cycles").value(n=n) == res.makespan
        assert reg.gauge("repro_sim_utilization").value(n=n) == res.utilization
        assert reg.counter("repro_sim_violations_total").value(n=n) == 0

    def test_register_expected_metrics_closed_forms(self) -> None:
        from fractions import Fraction

        reg = MetricsRegistry()
        register_expected_metrics(reg, 12, 4)
        assert reg.gauge("repro_expected_utilization").value() == Fraction(
            11 * 10, 12 * 13
        )
        assert reg.gauge("repro_expected_io_bandwidth").value() == Fraction(1, 3)
        assert reg.gauge("repro_expected_memory_ports").value() == 5
