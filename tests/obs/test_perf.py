"""Benchmark history store + regression gate (:mod:`repro.obs.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import perf


def record(exp_id, metrics, **kw):
    kw.setdefault("ts", 1000.0)
    kw.setdefault("commit", "abc1234")
    return perf.make_record(exp_id, metrics, **kw)


class TestClassification:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("wall_time_s", "wall_time"),
            ("oracle_vectorized_ms", "wall_time"),
            ("chained_makespan_cycles", "sim_cycles"),
            ("stall_cycles_total", "sim_cycles"),
            ("input_words_total", "memory_traffic"),
            ("max_r_memory_words", "memory_traffic"),
            ("max_avg_d_io", "host_bandwidth"),
            ("utilization", "other"),
        ],
    )
    def test_classify(self, name, cls):
        assert perf.classify_metric(name) == cls

    def test_every_class_has_a_threshold(self):
        assert set(perf.DEFAULT_THRESHOLDS) == set(perf.METRIC_CLASSES)


class TestHistoryStore:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "history.jsonl"
        r1 = record("F18", {"stall_cycles_total": 0}, n=12, m=4)
        r2 = record("F18", {"stall_cycles_total": 2}, n=12, m=4)
        perf.append_history(path, r1)
        perf.append_history(path, r2)
        loaded = perf.load_history(path)
        assert loaded == [r1, r2]
        assert all(r["version"] == perf.SCHEMA_VERSION for r in loaded)

    def test_load_missing_history_is_empty(self, tmp_path):
        assert perf.load_history(tmp_path / "absent.jsonl") == []

    def test_latest_by_exp_keeps_last(self):
        recs = [
            record("F18", {"x": 1}),
            record("F21", {"x": 5}),
            record("F18", {"x": 2}),
        ]
        latest = perf.latest_by_exp(recs)
        assert latest["F18"]["metrics"] == {"x": 2}
        assert latest["F21"]["metrics"] == {"x": 5}

    def test_rollup_caps_runs_per_experiment(self):
        recs = [record("F18", {"x": i}) for i in range(8)]
        doc = perf.rollup(recs, keep=3)
        runs = doc["experiments"]["F18"]["runs"]
        assert [r["metrics"]["x"] for r in runs] == [5, 6, 7]
        assert doc["version"] == perf.SCHEMA_VERSION

    def test_write_trajectory_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_PERF.json"
        recs = [record("F18", {"x": 1}), record("F18", {"x": 2})]
        doc = perf.write_trajectory(path, recs)
        assert json.loads(path.read_text()) == doc
        # load_records sniffs the trajectory shape -> latest run.
        assert perf.load_records(path)["F18"]["metrics"] == {"x": 2}

    def test_load_records_all_shapes(self, tmp_path):
        rec = record("F18", {"x": 3})
        jsonl = tmp_path / "h.jsonl"
        perf.append_history(jsonl, rec)
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(perf.make_baseline([rec])))
        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([rec]))
        single = tmp_path / "one.json"
        single.write_text(json.dumps(rec))
        for path in (jsonl, baseline, as_list, single):
            assert perf.load_records(path)["F18"]["metrics"] == {"x": 3}

    def test_load_records_rejects_unknown_shape(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"weird": true}')
        with pytest.raises(ValueError, match="unrecognised"):
            perf.load_records(bad)


class TestCompare:
    def base(self):
        return perf.latest_by_exp(
            [record("F18", {"wall_time_s": 1.0, "stall_cycles_total": 10})]
        )

    def test_identical_records_pass(self):
        assert perf.compare(self.base(), self.base()) == []

    def test_doubled_wall_time_is_a_regression(self):
        cur = perf.latest_by_exp(
            [record("F18", {"wall_time_s": 2.0, "stall_cycles_total": 10})]
        )
        regs = perf.compare(self.base(), cur)
        assert [r.metric for r in regs] == ["wall_time_s"]
        assert regs[0].metric_class == "wall_time"
        assert regs[0].ratio == pytest.approx(2.0)
        assert "REGRESSION F18.wall_time_s" in str(regs[0])

    def test_wall_time_noise_within_threshold_passes(self):
        cur = perf.latest_by_exp(
            [record("F18", {"wall_time_s": 1.4, "stall_cycles_total": 10})]
        )
        assert perf.compare(self.base(), cur) == []

    def test_sim_cycles_are_tightly_budgeted(self):
        cur = perf.latest_by_exp(
            [record("F18", {"wall_time_s": 1.0, "stall_cycles_total": 11})]
        )
        regs = perf.compare(self.base(), cur)
        assert [r.metric for r in regs] == ["stall_cycles_total"]

    def test_classes_filter_skips_wall_time(self):
        cur = perf.latest_by_exp(
            [record("F18", {"wall_time_s": 9.0, "stall_cycles_total": 10})]
        )
        assert perf.compare(self.base(), cur, classes=["sim_cycles"]) == []

    def test_threshold_override(self):
        cur = perf.latest_by_exp(
            [record("F18", {"wall_time_s": 1.2, "stall_cycles_total": 10})]
        )
        regs = perf.compare(
            self.base(), cur, thresholds={"wall_time": 0.1}
        )
        assert [r.metric for r in regs] == ["wall_time_s"]

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown metric class"):
            perf.compare({}, {}, thresholds={"warp_speed": 0.1})
        with pytest.raises(ValueError, match="unknown metric class"):
            perf.compare({}, {}, classes=["warp_speed"])

    def test_disjoint_experiments_and_metrics_skipped(self):
        cur = perf.latest_by_exp(
            [record("F21", {"input_words_total": 1e9}),
             record("F18", {"new_metric_cycles": 1e9})]
        )
        assert perf.compare(self.base(), cur) == []

    def test_zero_baseline_regression_has_inf_ratio(self):
        base = perf.latest_by_exp([record("F18", {"stall_cycles_total": 0})])
        cur = perf.latest_by_exp([record("F18", {"stall_cycles_total": 3})])
        (reg,) = perf.compare(base, cur)
        assert reg.ratio == float("inf")
        assert "REGRESSION" in str(reg)


class TestPerfcheckCLI:
    """Acceptance: the regression gate as wired into ``repro perfcheck``."""

    def write_artifacts(self, tmp_path, factor=1.0):
        base_rec = record(
            "F18", {"wall_time_s": 1.0, "stall_cycles_total": 10}
        )
        cur_rec = record(
            "F18",
            {"wall_time_s": 1.0 * factor, "stall_cycles_total": 10},
        )
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(perf.make_baseline([base_rec])))
        cur = tmp_path / "history.jsonl"
        perf.append_history(cur, cur_rec)
        return base, cur

    def test_unchanged_baseline_exits_zero(self, tmp_path, capsys):
        base, cur = self.write_artifacts(tmp_path, factor=1.0)
        rc = main(["perfcheck", "--baseline", str(base),
                   "--current", str(cur)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_doubled_wall_time_exits_nonzero_and_names_metric(
        self, tmp_path, capsys
    ):
        base, cur = self.write_artifacts(tmp_path, factor=2.0)
        rc = main(["perfcheck", "--baseline", str(base),
                   "--current", str(cur)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION F18.wall_time_s" in out
        assert "perfcheck: FAIL" in out

    def test_classes_flag_ignores_wall_time(self, tmp_path):
        base, cur = self.write_artifacts(tmp_path, factor=2.0)
        rc = main(["perfcheck", "--baseline", str(base),
                   "--current", str(cur),
                   "--classes", "sim_cycles,memory_traffic,host_bandwidth"])
        assert rc == 0

    def test_update_baseline_writes_current_latest(self, tmp_path, capsys):
        base, cur = self.write_artifacts(tmp_path, factor=2.0)
        rc = main(["perfcheck", "--baseline", str(base),
                   "--current", str(cur), "--update-baseline"])
        assert rc == 0
        doc = json.loads(base.read_text())
        assert doc["version"] == perf.SCHEMA_VERSION
        assert doc["experiments"]["F18"]["metrics"]["wall_time_s"] == 2.0
        # After the update the gate passes again.
        assert main(["perfcheck", "--baseline", str(base),
                     "--current", str(cur)]) == 0

    def test_missing_files_and_bad_flags_exit_two(self, tmp_path):
        base, cur = self.write_artifacts(tmp_path)
        missing = str(tmp_path / "nope.json")
        assert main(["perfcheck", "--baseline", missing,
                     "--current", str(cur)]) == 2
        assert main(["perfcheck", "--baseline", str(base),
                     "--current", missing]) == 2
        assert main(["perfcheck", "--baseline", str(base),
                     "--current", str(cur),
                     "--threshold", "wall_time=fast"]) == 2
        assert main(["perfcheck", "--baseline", str(base),
                     "--current", str(cur),
                     "--classes", "warp_speed"]) == 2


class TestCorruptHistory:
    """A killed run truncates history.jsonl; the loader must survive it."""

    def write_history(self, tmp_path):
        path = tmp_path / "history.jsonl"
        perf.append_history(path, record("F18", {"stall_cycles_total": 0}))
        perf.append_history(path, record("F19", {"stall_cycles_total": 1}))
        return path

    def test_truncated_final_line_is_skipped_with_warning(self, tmp_path):
        path = self.write_history(tmp_path)
        whole = path.read_text()
        path.write_text(whole[: len(whole) - 40])  # kill mid-record
        skipped: list = []
        with pytest.warns(perf.PerfHistoryWarning, match="corrupt history"):
            records = perf.load_history(path, skipped=skipped)
        assert [r["exp_id"] for r in records] == ["F18"]
        assert len(skipped) == 1
        assert skipped[0][0] == 2  # 1-based line number

    def test_non_object_line_is_skipped(self, tmp_path):
        path = self.write_history(tmp_path)
        with path.open("a") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.warns(perf.PerfHistoryWarning, match="not a record"):
            records = perf.load_history(path)
        assert len(records) == 2

    def test_load_records_counts_skips(self, tmp_path):
        path = self.write_history(tmp_path)
        with path.open("a") as fh:
            fh.write('{"oops\n')
        skipped: list = []
        with pytest.warns(perf.PerfHistoryWarning):
            latest = perf.load_records(path, skipped=skipped)
        assert set(latest) == {"F18", "F19"}
        assert len(skipped) == 1

    def test_perfcheck_reports_skipped_count(self, tmp_path, capsys):
        path = self.write_history(tmp_path)
        with path.open("a") as fh:
            fh.write('{"oops\n')
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(
            perf.make_baseline([record("F18", {"stall_cycles_total": 0}),
                                record("F19", {"stall_cycles_total": 1})])
        ))
        with pytest.warns(perf.PerfHistoryWarning):
            rc = main(["perfcheck", "--baseline", str(base),
                       "--current", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "skipped 1 corrupt history line(s)" in out


class TestRecordsWithoutExpId:
    def test_latest_by_exp_skips_and_warns(self):
        good = record("F18", {"stall_cycles_total": 0})
        with pytest.warns(perf.PerfHistoryWarning, match="without exp_id"):
            latest = perf.latest_by_exp([{"metrics": {"x": 1}}, good])
        assert set(latest) == {"F18"}

    def test_rollup_skips_unkeyable_records(self):
        good = record("F18", {"stall_cycles_total": 0})
        doc = perf.rollup([{"metrics": {"x": 1}}, good])
        assert set(doc["experiments"]) == {"F18"}


class TestNewMetricFindings:
    def make_maps(self):
        baseline = {"F18": record("F18", {"stall_cycles_total": 0})}
        current = {
            "F18": record(
                "F18", {"stall_cycles_total": 0, "wall_vector_s": 0.01}
            )
        }
        return baseline, current

    def test_find_new_metrics_classifies(self):
        baseline, current = self.make_maps()
        assert perf.find_new_metrics(baseline, current) == [
            ("F18", "wall_vector_s", "wall_time")
        ]

    def test_new_metric_is_reported_but_not_gating(self, tmp_path, capsys):
        baseline, current = self.make_maps()
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(perf.make_baseline(baseline.values())))
        cur = tmp_path / "history.jsonl"
        perf.append_history(cur, current["F18"])
        rc = main(["perfcheck", "--baseline", str(base),
                   "--current", str(cur)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NEW METRIC F18.wall_vector_s [wall_time]" in out
        assert "no regressions" in out


class TestRunIdStamping:
    def test_make_record_carries_run_id(self):
        rec = perf.make_record(
            "F20", {"wall_time_s": 0.5}, run_id="bench-abc123def456"
        )
        assert rec["run_id"] == "bench-abc123def456"
        assert perf.make_record("F20", {})["run_id"] is None

    def test_rollup_trajectory_keeps_run_id(self):
        records = [
            perf.make_record("F20", {"x": 1.0}, run_id="bench-aaa"),
            perf.make_record("F20", {"x": 2.0}, run_id=None),
        ]
        traj = perf.rollup(records)
        run_ids = [r["run_id"] for r in traj["experiments"]["F20"]["runs"]]
        assert run_ids == ["bench-aaa", None]

    def test_format_report_names_source_ledgers(self):
        base = {"F20": perf.make_record("F20", {"x": 1.0})}
        cur = {"F20": perf.make_record("F20", {"x": 1.0},
                                       run_id="bench-abc")}
        text = perf.format_report(base, cur, [])
        assert "run ledger" in text and "bench-abc" in text
        # No ledger -> no dangling header line.
        text = perf.format_report(base, base, [])
        assert "run ledger" not in text


class TestBlame:
    """Wall-time regressions are attributed to the phase that moved most."""

    def maps(self, compile_cur=1.1):
        baseline = {
            "F18": record("F18", {"wall_time_s": 1.0}),
            "F18:profile": record("F18:profile", {
                "profile_wall_s": 1.0,
                "profile_sim_compile_self_s": 0.2,
                "profile_plan_partitioned_self_s": 0.1,
            }),
        }
        current = {
            "F18": record("F18", {"wall_time_s": 2.0}),
            "F18:profile": record("F18:profile", {
                "profile_wall_s": 2.0,
                "profile_sim_compile_self_s": compile_cur,
                "profile_plan_partitioned_self_s": 0.12,
            }),
        }
        return baseline, current

    def test_profile_metrics_classified_wall_time(self):
        assert perf.classify_metric("profile_sim_compile_self_s") == "wall_time"
        assert perf.classify_metric("profile_wall_s") == "wall_time"

    def test_profile_metrics_for_merges_companion_record(self):
        baseline, _ = self.maps()
        metrics = perf.profile_metrics_for(baseline, "F18")
        assert metrics == {
            "profile_wall_s": 1.0,
            "profile_sim_compile_self_s": 0.2,
            "profile_plan_partitioned_self_s": 0.1,
        }
        assert perf.profile_metrics_for(baseline, "NOPE") == {}

    def test_blame_names_biggest_mover(self):
        baseline, current = self.maps()
        regs = perf.compare(baseline, current, classes=["wall_time"])
        lines = perf.blame_lines(baseline, current, regs)
        blames = [ln for ln in lines if ln.startswith("BLAME F18.")]
        assert len(blames) == 1
        assert "phase 'sim_compile' moved most" in blames[0]
        assert "0.2s -> 1.1s" in blames[0]

    def test_blame_hint_without_profile_record(self):
        baseline = {"F18": record("F18", {"wall_time_s": 1.0})}
        current = {"F18": record("F18", {"wall_time_s": 2.0})}
        regs = perf.compare(baseline, current, classes=["wall_time"])
        lines = perf.blame_lines(baseline, current, regs)
        assert len(lines) == 1
        assert "no profile record" in lines[0]
        assert "repro profile --record" in lines[0]

    def test_blame_skips_non_wall_time_regressions(self):
        baseline = {"F18": record("F18", {"stall_cycles_total": 0.0})}
        current = {"F18": record("F18", {"stall_cycles_total": 5.0})}
        regs = perf.compare(baseline, current)
        assert regs  # sim_cycles regression exists...
        assert perf.blame_lines(baseline, current, regs) == []

    def test_format_report_includes_blame(self):
        baseline, current = self.maps()
        regs = perf.compare(baseline, current, classes=["wall_time"])
        text = perf.format_report(baseline, current, regs, ["wall_time"])
        assert "BLAME F18.wall_time_s" in text
        assert "FAIL" in text

    def test_deterministic_classes_ignore_profile_records(self):
        """The CI gate's classes never gate on profile companions."""
        baseline, current = self.maps()
        regs = perf.compare(
            baseline, current,
            classes=["sim_cycles", "memory_traffic", "host_bandwidth"],
        )
        assert regs == []
