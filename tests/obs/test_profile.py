"""Profiler + hotspot attribution tests (:mod:`repro.obs.profile`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import profile as prof
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.tracing import Span


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate kernel-profiler metrics from other tests."""
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(MetricsRegistry())


@pytest.fixture(autouse=True)
def _no_leftover_profiler():
    yield
    prof.uninstall_kernel_profiler()


# ----------------------------------------------------------------------
# Phase trees
# ----------------------------------------------------------------------

def span(name, start_ms, end_ms):
    return Span(name, int(start_ms * 1e6), int(end_ms * 1e6))


class TestPhaseTree:
    def test_nesting_from_interval_containment(self):
        spans = [
            span("inner.a", 10, 40),
            span("inner.b", 50, 90),
            span("outer", 0, 100),
        ]
        root = prof.build_phase_tree(spans, wall_s=0.1)
        outer = root.children["outer"]
        assert set(outer.children) == {"inner.a", "inner.b"}
        assert outer.total_s == pytest.approx(0.1)
        assert outer.self_s == pytest.approx(0.03)  # 100 - 30 - 40 ms

    def test_self_times_sum_to_wall(self):
        spans = [
            span("a", 0, 60),
            span("a.x", 5, 25),
            span("b", 60, 80),
        ]
        root = prof.build_phase_tree(spans, wall_s=0.1)
        self_sum = sum(node.self_s for _, node in root.walk())
        assert self_sum == pytest.approx(0.1)

    def test_repeated_phases_aggregate(self):
        spans = [span("step", 0, 10), span("step", 20, 35)]
        root = prof.build_phase_tree(spans)
        step = root.children["step"]
        assert step.count == 2
        assert step.total_s == pytest.approx(0.025)

    def test_empty_spans(self):
        root = prof.build_phase_tree([], wall_s=1.5)
        assert root.total_s == 1.5
        assert root.children == {}

    def test_to_dict_sorted_by_total(self):
        spans = [span("small", 0, 5), span("big", 10, 90)]
        doc = prof.build_phase_tree(spans).to_dict()
        assert [c["name"] for c in doc["children"]] == ["big", "small"]
        assert doc["children"][0]["self_s"] == pytest.approx(0.08)

    def test_profile_from_runlog_rebuilds_nesting(self):
        events = [
            {"event": "run_start", "ts": 0.0},
            {"event": "stage_start", "stage": "outer", "task": "cfg", "ts": 0.1},
            {"event": "stage_start", "stage": "inner", "task": "cfg", "ts": 0.2},
            {"event": "stage_end", "stage": "inner", "task": "cfg",
             "ts": 0.5, "dur_s": 0.3},
            {"event": "stage_end", "stage": "outer", "task": "cfg",
             "ts": 0.9, "dur_s": 0.8},
            {"event": "run_end", "ts": 1.0},
        ]
        root = prof.profile_from_runlog(events, root_name="r")
        assert root.total_s == pytest.approx(1.0)
        cfg = root.children["cfg"]
        outer = cfg.children["outer"]
        assert outer.total_s == pytest.approx(0.8)
        assert outer.children["inner"].total_s == pytest.approx(0.3)
        # The task prefix node inherits its children's time, so the
        # tree's self-times telescope to the root total.
        assert cfg.total_s == pytest.approx(0.8)
        self_sum = sum(node.self_s for _, node in root.walk())
        assert self_sum == pytest.approx(root.total_s)

    def test_to_folded_format(self):
        spans = [span("a", 0, 100), span("a.x", 10, 60)]
        root = prof.build_phase_tree(spans, root_name="run", wall_s=0.1)
        lines = prof.to_folded(root)
        assert "run;a;a.x 50000" in lines
        assert "run;a 50000" in lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack and value.isdigit()


# ----------------------------------------------------------------------
# Kernel profiler + seam
# ----------------------------------------------------------------------

class TestKernelProfiler:
    def test_record_and_summary(self, _fresh_registry):
        kp = prof.KernelProfiler(_fresh_registry)
        kp.record("mac", 100, 2e-5, depth=1, backend="vector")
        kp.record("mac", 100, 3e-5, depth=1, backend="vector")
        kp.record("min", 10, 1e-3, depth=2, backend="vector")
        rows = kp.summary()
        assert [r["opcode"] for r in rows] == ["min", "mac"]  # by total
        mac = rows[1]
        assert mac["calls"] == 2
        assert mac["elements"] == 200
        assert mac["total_s"] == pytest.approx(5e-5)
        assert 2e-5 <= mac["p99_s"] <= 5e-5

    def test_observations_land_in_registry_histogram(self, _fresh_registry):
        kp = prof.KernelProfiler(_fresh_registry)
        kp.record("mac", 7, 1e-5, depth=3)
        text = _fresh_registry.to_prometheus()
        assert "repro_profile_kernel_step_seconds_bucket" in text
        assert 'opcode="mac"' in text and 'depth="3"' in text
        assert "repro_profile_kernel_elements_total" in text

    def test_seam_install_uninstall(self):
        assert prof.kernel_profiler() is None
        kp = prof.install_kernel_profiler()
        assert prof.kernel_profiler() is kp
        assert prof.uninstall_kernel_profiler() is kp
        assert prof.kernel_profiler() is None

    def test_kernel_profiling_context(self):
        with prof.kernel_profiling() as kp:
            assert prof.kernel_profiler() is kp
        assert prof.kernel_profiler() is None

    def test_off_by_default_zero_metrics(self, _fresh_registry):
        """The zero-overhead contract: nothing recorded when off."""
        from repro.algorithms.transitive_closure import make_inputs
        from repro.algorithms.warshall import random_adjacency
        from repro.arrays.vector_sim import dispatch_simulate
        from repro.core.partitioner import partition_transitive_closure

        impl = partition_transitive_closure(n=6, m=2)
        a = random_adjacency(6, seed=0)
        dispatch_simulate(impl.exec_plan, impl.dg, make_inputs(a),
                          backend="vector")
        assert "repro_profile_kernel_step_seconds" not in _fresh_registry

    def test_vector_backend_bit_identical_under_profiler(self):
        from repro.algorithms.transitive_closure import make_inputs
        from repro.algorithms.warshall import random_adjacency
        from repro.arrays.cycle_sim import simulate
        from repro.arrays.vector_sim import simulate_vector
        from repro.core.partitioner import partition_transitive_closure

        impl = partition_transitive_closure(n=7, m=3)
        inputs = make_inputs(random_adjacency(7, seed=1))
        ref = simulate(impl.exec_plan, impl.dg, inputs)
        with prof.kernel_profiling() as kp:
            vec = simulate_vector(impl.exec_plan, impl.dg, inputs)
        assert np.array_equal(vec.output_matrix(7), ref.output_matrix(7))
        assert vec.makespan == ref.makespan
        rows = kp.summary()
        assert rows and all(r["backend"] == "vector" for r in rows)
        assert len({r["depth"] for r in rows}) > 1  # per-depth attribution

    def test_reference_interpreter_records_when_on(self):
        from repro.algorithms.transitive_closure import make_inputs
        from repro.algorithms.warshall import random_adjacency
        from repro.arrays.cycle_sim import simulate
        from repro.core.partitioner import partition_transitive_closure

        impl = partition_transitive_closure(n=6, m=2)
        inputs = make_inputs(random_adjacency(6, seed=0))
        with prof.kernel_profiling() as kp:
            simulate(impl.exec_plan, impl.dg, inputs)
        rows = kp.summary()
        assert rows and all(r["backend"] == "reference" for r in rows)


# ----------------------------------------------------------------------
# Critical path + attribution
# ----------------------------------------------------------------------

class TestCriticalPath:
    def shipped(self, geometry="linear", n=9, m=3):
        return prof.build_config_plan(geometry, n, m)

    def test_matches_makespan_on_shipped_linear_config(self):
        dg, ep = self.shipped()
        cp = prof.critical_path(ep, dg)
        assert cp.start_cycle == 0
        assert cp.end_cycle == ep.makespan - 1
        assert cp.length == ep.makespan
        assert cp.matches_makespan

    def test_matches_makespan_on_shipped_mesh_config(self):
        dg, ep = self.shipped("mesh", 10, 4)
        cp = prof.critical_path(ep, dg)
        assert cp.matches_makespan

    def test_steps_strictly_increase_in_cycle(self):
        dg, ep = self.shipped(n=7, m=3)
        cp = prof.critical_path(ep, dg)
        cycles = [s.cycle for s in cp.steps]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles)
        assert cp.steps[-1].edge == "end"
        assert cp.steps[-1].slack == 0
        assert all(
            s.edge in ("data-local", "data-memory", "resource")
            for s in cp.steps[:-1]
        )

    def test_deterministic(self):
        dg, ep = self.shipped(n=8, m=3)
        a = prof.critical_path(ep, dg)
        b = prof.critical_path(ep, dg)
        assert [s.node for s in a.steps] == [s.node for s in b.steps]

    def test_empty_plan(self):
        from repro.arrays.plan import ExecutionPlan
        from repro.arrays.topology import linear_topology
        from repro.algorithms.transitive_closure import tc_regular

        ep = ExecutionPlan(topology=linear_topology(2), fires={})
        cp = prof.critical_path(ep, tc_regular(3))
        assert cp.steps == [] and cp.length == 0

    def test_attribution_sums_to_length(self):
        dg, ep = self.shipped()
        cp = prof.critical_path(ep, dg)
        rows = prof.attribute_makespan(cp, top=10_000)
        assert sum(r["cycles"] for r in rows) == cp.length
        assert all(0 < r["share"] <= 1 for r in rows)
        # Sorted heaviest first.
        cycles = [r["cycles"] for r in rows]
        assert cycles == sorted(cycles, reverse=True)

    def test_attribution_top_k(self):
        dg, ep = self.shipped()
        cp = prof.critical_path(ep, dg)
        assert len(prof.attribute_makespan(cp, top=3)) == 3

    def test_config_critical_report_cross_checks_simulator(self):
        rep = prof.config_critical_report("linear", 9, 3)
        assert rep["matches_makespan"] is True
        assert rep["length"] == rep["makespan"]
        assert rep["busy"] == rep["fired_nodes"]
        assert rep["hotspots"]

    def test_experiment_configs(self):
        f18 = prof.experiment_configs("F18")
        assert f18 and all(g == "linear" for g, _, _ in f18)
        f19 = prof.experiment_configs("F19")
        assert f19 and all(g == "mesh" for g, _, _ in f19)
        assert prof.experiment_configs("F20") == []


# ----------------------------------------------------------------------
# Document + rendering
# ----------------------------------------------------------------------

class TestProfileDocument:
    def doc(self):
        spans = [span("a", 0, 60), span("b", 60, 100)]
        phases = prof.build_phase_tree(spans, wall_s=0.1)
        return prof.build_profile_document(
            phases, 0.1,
            kernels=[{"backend": "vector", "depth": 1, "opcode": "mac",
                      "calls": 2, "elements": 10, "total_s": 0.01,
                      "p50_s": 1e-5, "p99_s": 2e-5}],
            critical_paths=[prof.config_critical_report("linear", 6, 2)],
            experiment="F18", backend="vector",
        )

    def test_versioned_document_shape(self):
        doc = self.doc()
        assert doc["version"] == prof.PROFILE_SCHEMA_VERSION
        assert doc["kind"] == "repro-profile"
        assert doc["self_sum_s"] == pytest.approx(doc["wall_s"])
        assert doc["phases"]["children"]
        assert doc["kernels"] and doc["critical_paths"]

    def test_render_text(self):
        text = prof.render_profile_text(self.doc())
        assert "profile v1" in text
        assert "phases (top" in text
        assert "kernels (top" in text
        assert "critical path [linear-n6-m2]" in text
        assert "= makespan" in text
