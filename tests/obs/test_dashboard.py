"""The self-contained HTML dashboard (:mod:`repro.obs.dashboard`)."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.arrays.cycle_sim import cell_fire_counts
from repro.cli import main
from repro.obs import perf
from repro.obs.dashboard import (
    activity_class,
    build_dashboard,
    cell_grid,
    collect_run,
    render_dashboard,
)

SVG_RE = re.compile(r"<svg\b.*?</svg>", re.DOTALL)


def extract_svgs(html: str) -> list[str]:
    return SVG_RE.findall(html)


def heatmap_counts(html: str, title_needle: str) -> dict[str, float]:
    """``data-cell -> data-count`` from the heatmap titled *title_needle*."""
    for svg in extract_svgs(html):
        if title_needle in svg:
            return {
                m.group(1): float(m.group(2))
                for m in re.finditer(
                    r'data-cell="([^"]+)" data-count="([^"]+)"', svg
                )
            }
    raise AssertionError(f"no svg containing {title_needle!r}")


class TestCellGrid:
    def test_mesh_tuples_keep_coordinates(self):
        assert cell_grid({(1, 2): 5, (0, 0): 1}) == {
            (1, 2): 5.0, (0, 0): 1.0,
        }

    def test_linear_ints_become_one_row(self):
        assert cell_grid({2: 7, 0: 3}) == {(0, 2): 7.0, (0, 0): 3.0}

    def test_opaque_keys_enumerate_sorted(self):
        grid = cell_grid({"b": 2, "a": 1})
        assert grid == {(0, 0): 1.0, (0, 1): 2.0}


class TestActivityClass:
    @pytest.mark.parametrize(
        "raw,cls",
        [("compute", "compute"), ("op", "compute"),
         ("delay", "delay"), ("Delay3", "delay"),
         ("link", "transmit"), ("anything", "transmit")],
    )
    def test_mapping(self, raw, cls):
        assert activity_class(raw) == cls


class TestHeatmapAcceptance:
    """Acceptance: heatmap counts == RecordingProbe per-cell fire counts."""

    def test_3x3_warshall_run_heatmap_matches_probe(self):
        run = collect_run(3, 2, seed=0)
        assert run["correct"]  # it really is a verified Warshall closure
        expected = {
            f"{r},{c}": float(v)
            for (r, c), v in cell_grid(cell_fire_counts(run["probe"])).items()
        }
        html = render_dashboard(run)
        assert heatmap_counts(html, "Fires per cell") == expected
        assert expected  # non-vacuous: some cell fired

    def test_heatmap_matches_probe_on_larger_mesh(self):
        run = collect_run(8, 4, geometry="mesh", seed=1)
        expected = {
            f"{r},{c}": float(v)
            for (r, c), v in cell_grid(cell_fire_counts(run["probe"])).items()
        }
        html = render_dashboard(run)
        assert heatmap_counts(html, "Fires per cell") == expected


class TestSelfContained:
    @pytest.fixture(scope="class")
    def html(self):
        return build_dashboard(n=6, m=3, sizes=(6,))

    def test_no_external_resources_or_scripts(self, html):
        low = html.lower()
        assert "<script" not in low
        assert "src=" not in low
        assert "href=" not in low
        assert "<style>" in low

    def test_every_svg_is_wellformed_xml(self, html):
        svgs = extract_svgs(html)
        assert len(svgs) >= 4  # heatmaps, lanes, curves
        for svg in svgs:
            ET.fromstring(svg)

    def test_tooltips_are_native_titles(self, html):
        assert html.count("<title>") > 20  # hover layer without JS

    def test_all_dashboard_sections_present(self, html):
        assert "Simulated run" in html
        assert "closed forms" in html
        assert "Occupancy timeline" in html
        assert "Fig. 21" in html

    def test_empty_dashboard_renders(self):
        assert "nothing to show" in render_dashboard()


class TestNullDimensionHistory:
    """Mixed null/non-null dimensions must not crash any panel.

    Older history records (pre-inference benchmarks, A-ALN and friends)
    carry ``"n": null`` — the trajectory table renders "-" for them and
    the sweep charts skip them rather than plotting a None coordinate.
    """

    @staticmethod
    def mixed_history() -> list[dict]:
        return [
            perf.make_record("A-ALN", {"wall_time_s": 0.5},
                             ts=1000.0, commit="abc1234"),  # n/m null
            perf.make_record("F18", {"wall_time_s": 0.8}, n=12, m=4,
                             ts=1001.0, commit="abc1234"),
        ]

    def test_mixed_history_renders_null_dims_as_dash(self):
        html = render_dashboard(history=self.mixed_history())
        assert "A-ALN" in html and "F18" in html
        assert "None" not in html
        assert ">-<" in html  # the null-dim cells

    def test_non_null_dims_still_shown(self):
        html = render_dashboard(history=self.mixed_history())
        assert ">12<" in html  # F18's last_n survives the filter

    @staticmethod
    def sweep_row(n):
        return {
            "n": n, "m": 3,
            "measured_throughput": 1e-3, "expected_throughput": 1.1e-3,
            "measured_utilization": 0.5, "expected_utilization": 0.55,
        }

    def test_sweep_skips_null_dim_rows_but_tables_them(self):
        rows = [self.sweep_row(6), self.sweep_row(8),
                {"n": None, "m": "legacy"}]
        html = render_dashboard(sweep_rows=rows)
        assert "Throughput vs n" in html  # charts still drawn
        for svg in extract_svgs(html):
            ET.fromstring(svg)  # no None leaked into coordinates
        assert "legacy" in html  # the skipped row is still tabled

    def test_all_null_sweep_rows_fall_back_to_table_only(self):
        html = render_dashboard(sweep_rows=[{"n": None, "m": "legacy"}])
        assert "Throughput vs n" not in html
        assert "legacy" in html

    def test_bool_n_is_not_numeric(self):
        # bool is an int subclass; a True "dimension" must not plot at x=1.
        html = render_dashboard(sweep_rows=[{"n": True, "m": "boolrow"}])
        assert "Throughput vs n" not in html


class TestDashboardCLI:
    def test_writes_single_html_file(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        rc = main(["dashboard", "--out", str(out), "--n", "6", "--m", "3",
                   "--sizes", "6", "--history", str(tmp_path / "none.jsonl")])
        assert rc == 0
        assert "no history" in capsys.readouterr().out
        assert out.exists() and out.read_text().startswith("<!DOCTYPE html>")

    def test_history_section_appears_when_history_exists(
        self, tmp_path, capsys
    ):
        hist = tmp_path / "history.jsonl"
        for wall in (1.0, 1.1):
            perf.append_history(
                hist,
                perf.make_record("F18", {"wall_time_s": wall},
                                 ts=1000.0 + wall, commit="abc1234"),
            )
        out = tmp_path / "dash.html"
        rc = main(["dashboard", "--out", str(out), "--n", "6", "--m", "3",
                   "--sizes", "6", "--history", str(hist)])
        assert rc == 0
        assert str(hist) in capsys.readouterr().out
        assert "Benchmark history" in out.read_text()

    def test_bad_sizes_rejected(self, tmp_path):
        assert main(["dashboard", "--out", str(tmp_path / "d.html"),
                     "--sizes", "six"]) == 2
