"""Derived-report aggregation on multi-G-set *chained* plans.

``tests/obs/test_probe.py`` covers the single-plan paths; here the probe
watches ``run_chained_instances`` — k replicated graphs co-simulated
under one combined plan — and the occupancy/memory/I-O aggregations must
stay consistent with the combined :class:`SimResult`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.arrays.cycle_sim import cell_fire_counts, cell_utilization
from repro.arrays.pipeline import run_chained_instances
from repro.arrays.plan import (
    fixed_array_plan,
    min_initiation_interval,
    partitioned_plan,
)
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.obs import (
    RecordingProbe,
    io_demand_curve,
    memory_traffic_per_cycle,
    occupancy_timeline,
)

N = 6
K = 3


@pytest.fixture(scope="module")
def chained_fixed_run():
    """K instances chained on the Fig. 17 fixed-size array, probed."""
    dg = tc_regular(N)
    gg = GGraph(dg, group_by_columns)
    ep = fixed_array_plan(gg)
    delta = min_initiation_interval(ep)
    mats = [random_adjacency(N, 0.3, seed=s) for s in range(K)]
    probe = RecordingProbe()
    run = run_chained_instances(
        dg, ep, [make_inputs(a) for a in mats], delta, probe=probe
    )
    for i, a in enumerate(mats):
        assert np.array_equal(run.output_matrix(i, N), warshall(a))
    return run, probe


@pytest.fixture(scope="module")
def chained_partitioned_run():
    """K instances of a *partitioned* (multi-G-set) plan, probed.

    The partitioned plan round-trips values through external memory
    between G-sets, so the chained run exercises the memory-traffic
    aggregation path that the fixed array never hits.
    """
    dg = tc_regular(N)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, 3)
    order = schedule_gsets(plan, "vertical")
    ep = partitioned_plan(plan, order)
    delta = ep.makespan + 1  # sequential instances: always legal
    mats = [random_adjacency(N, 0.3, seed=10 + s) for s in range(K)]
    probe = RecordingProbe()
    run = run_chained_instances(
        dg, ep, [make_inputs(a) for a in mats], delta, probe=probe
    )
    for i, a in enumerate(mats):
        assert np.array_equal(run.output_matrix(i, N), warshall(a))
    return run, probe


class TestChainedOccupancy:
    def test_timeline_covers_combined_busy_count(self, chained_fixed_run):
        run, probe = chained_fixed_run
        lanes = occupancy_timeline(probe)
        assert sum(len(v) for v in lanes.values()) == run.result.busy

    def test_lanes_have_no_double_booking(self, chained_fixed_run):
        _, probe = chained_fixed_run
        for lane in occupancy_timeline(probe).values():
            cycles = [c for c, _ in lane]
            assert cycles == sorted(cycles)
            assert len(cycles) == len(set(cycles))  # one fire/cell/cycle

    def test_cell_summaries_match_timeline(self, chained_fixed_run):
        run, probe = chained_fixed_run
        lanes = occupancy_timeline(probe)
        counts = cell_fire_counts(probe)
        assert counts == {cell: len(lane) for cell, lane in lanes.items()}
        util = cell_utilization(probe, run.result.makespan)
        for cell, fires in counts.items():
            assert util[cell] * run.result.makespan == fires

    def test_chained_occupancy_exceeds_single_instance(self):
        dg = tc_regular(N)
        gg = GGraph(dg, group_by_columns)
        ep = fixed_array_plan(gg)
        delta = min_initiation_interval(ep)

        def occupancy(k: int):
            mats = [random_adjacency(N, 0.3, seed=s) for s in range(k)]
            run = run_chained_instances(
                dg, ep, [make_inputs(a) for a in mats], delta
            )
            return run.result.occupancy

        assert occupancy(3) > occupancy(1)  # overlap fills the idle cycles


class TestChainedMemoryTraffic:
    def test_traffic_totals_match_combined_result(
        self, chained_partitioned_run
    ):
        run, probe = chained_partitioned_run
        curve = memory_traffic_per_cycle(probe)
        assert sum(w for _, w in curve) == run.result.memory_reads
        assert run.result.memory_reads > 0  # cut-and-pile actually happened

    def test_traffic_scales_with_instance_count(
        self, chained_partitioned_run
    ):
        run, probe = chained_partitioned_run
        single = run.result.memory_reads // K
        # Sequential chaining: every instance pays the same cut-and-pile
        # round trips, so the combined traffic is exactly K times one.
        assert run.result.memory_reads == single * K

    def test_io_demand_curve_matches_combined_result(
        self, chained_partitioned_run
    ):
        run, probe = chained_partitioned_run
        assert io_demand_curve(probe) == run.result.io_demand_curve()

    def test_memory_traffic_cycles_within_makespan(
        self, chained_partitioned_run
    ):
        run, probe = chained_partitioned_run
        for cycle, reads in memory_traffic_per_cycle(probe):
            assert 0 <= cycle <= run.result.makespan
            assert reads > 0
