"""Tests for span tracing and the Chrome trace-event exporter."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Tracer,
    get_tracer,
    install_tracer,
    stage_span,
    uninstall_tracer,
)
from repro.obs.tracing import NULL_SPAN, SIM_PID, WALL_PID


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestTracer:
    def test_span_records_duration_and_tags(self) -> None:
        t = Tracer()
        with t.span("stage.one", n=6) as s:
            s.tag("nodes_out", 42)
        assert len(t.spans) == 1
        done = t.spans[0]
        assert done.name == "stage.one"
        assert done.args == {"n": 6, "nodes_out": 42}
        assert done.duration_ns >= 0

    def test_nested_spans_both_recorded(self) -> None:
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_span_closed_on_exception(self) -> None:
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("bad"):
                raise RuntimeError("boom")
        assert t.spans[0].end_ns is not None

    def test_find_spans(self) -> None:
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        assert len(t.find_spans("a")) == 2
        assert t.find_spans("b") == []

    def test_fraction_tags_become_floats(self) -> None:
        from fractions import Fraction

        t = Tracer()
        with t.span("s", ratio=Fraction(1, 2)):
            pass
        assert t.spans[0].args["ratio"] == 0.5


class TestChromeExport:
    def test_trace_event_schema(self, tmp_path) -> None:
        t = Tracer()
        with t.span("stage.alpha", n=5):
            pass
        t.instant("marker", hint="here")
        t.add_chrome_event(
            {"name": "fires/cycle", "ph": "C", "ts": 3.0, "pid": SIM_PID,
             "tid": 0, "args": {"fires/cycle": 2}}
        )
        path = tmp_path / "t.json"
        count = t.write_chrome(path)
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert len(events) == count
        for ev in events:
            assert {"name", "ph", "pid"} <= set(ev)
            if ev["ph"] == "X":
                assert "ts" in ev and "dur" in ev and ev["dur"] >= 0
        x = [e for e in events if e["ph"] == "X"]
        assert x[0]["name"] == "stage.alpha"
        assert x[0]["pid"] == WALL_PID
        assert x[0]["args"]["n"] == 5

    def test_process_metadata_present(self) -> None:
        doc = Tracer().to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {WALL_PID, SIM_PID}


class TestStageSpan:
    def test_noop_without_tracer(self) -> None:
        assert get_tracer() is None
        with stage_span("anything", n=1) as sp:
            assert sp is NULL_SPAN
            sp.tag("x", 1)  # must be harmless

    def test_records_when_installed(self) -> None:
        t = install_tracer()
        with stage_span("stage.beta", m=4) as sp:
            sp.tag("out", 9)
        assert t.find_spans("stage.beta")[0].args == {"m": 4, "out": 9}

    def test_install_uninstall_roundtrip(self) -> None:
        t = install_tracer()
        assert get_tracer() is t
        assert uninstall_tracer() is t
        assert get_tracer() is None


class TestPipelineIntegration:
    def test_partition_pipeline_emits_stage_spans(self) -> None:
        from repro import partition_transitive_closure

        t = install_tracer()
        impl = partition_transitive_closure(n=6, m=3)
        _ = impl.exec_plan
        names = {s.name for s in t.spans}
        assert {
            "frontend.tc_regular",
            "partition.group",
            "partition.select_gsets",
            "partition.schedule",
            "partition.verify",
            "partition.evaluate",
            "arrays.partitioned_plan",
        } <= names
        group = t.find_spans("partition.group")[0]
        assert group.args["nodes"] > 0 and group.args["gnodes"] > 0

    def test_transforms_emit_spans_with_node_counts(self) -> None:
        from repro.algorithms.transitive_closure import tc_pruned
        from repro.core.transform import pipeline_broadcasts

        t = install_tracer()
        dg = tc_pruned(5)
        pipeline_broadcasts(dg)
        span = t.find_spans("transform.pipeline_broadcasts")[0]
        assert span.args["nodes_in"] == len(dg)
        assert span.args["edges_in"] > 0
        assert "nodes_out" in span.args

    def test_cut_and_pile_emits_spans(self) -> None:
        from repro.algorithms.transitive_closure import tc_regular
        from repro.core.ggraph import GGraph, group_by_columns
        from repro.partitioning.cut_and_pile import cut_and_pile

        t = install_tracer()
        cut_and_pile(GGraph(tc_regular(6), group_by_columns), 3)
        names = {s.name for s in t.spans}
        assert {
            "cut_and_pile.select_gsets",
            "cut_and_pile.schedule",
            "cut_and_pile.exec_plan",
            "cut_and_pile.evaluate",
        } <= names

    def test_chained_instances_emit_spans(self) -> None:
        from repro.algorithms.transitive_closure import (
            make_inputs,
            tc_regular,
        )
        from repro.algorithms.warshall import random_adjacency
        from repro.arrays.pipeline import run_chained_instances
        from repro.arrays.plan import fixed_array_plan, min_initiation_interval
        from repro.core.ggraph import GGraph, group_by_columns

        n = 5
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        ep = fixed_array_plan(gg)
        delta = min_initiation_interval(ep)
        envs = [make_inputs(random_adjacency(n, seed=s)) for s in (0, 1)]
        t = install_tracer()
        run_chained_instances(dg, ep, envs, delta)
        names = {s.name for s in t.spans}
        assert {"chain.replicate_graph", "chain.chain_plans", "sim.simulate"} <= names


class TestTracedRun:
    def test_normal_exit_returns_tracer_without_flush(self, tmp_path) -> None:
        from repro.obs import traced_run

        out = tmp_path / "t.json"
        with traced_run(out) as tracer:
            with stage_span("stage.work"):
                pass
        assert get_tracer() is None
        assert len(tracer.find_spans("stage.work")) == 1
        # Normal exit leaves export to the caller.
        assert not out.exists()

    def test_crash_flushes_valid_partial_trace(self, tmp_path) -> None:
        from repro.obs import traced_run

        out = tmp_path / "crash.json"
        with pytest.raises(RuntimeError, match="kaboom"):
            with traced_run(out):
                with stage_span("stage.before"):
                    pass
                with stage_span("stage.during"):
                    raise RuntimeError("kaboom")
        assert get_tracer() is None  # uninstalled during unwind
        doc = json.loads(out.read_text())
        names = [ev["name"] for ev in doc["traceEvents"]]
        # Every stage up to the failure survived, spans are closed
        # (complete "X" events), and the terminal error marker is there.
        assert "stage.before" in names
        assert "stage.during" in names
        assert "trace.error" in names
        err = next(
            ev for ev in doc["traceEvents"] if ev["name"] == "trace.error"
        )
        assert err["ph"] == "i"
        assert err["args"]["error"] == "RuntimeError"
        assert err["args"]["message"] == "kaboom"

    def test_crash_without_path_still_uninstalls(self) -> None:
        from repro.obs import traced_run

        with pytest.raises(ValueError):
            with traced_run():
                raise ValueError("x")
        assert get_tracer() is None
