"""Tests for the metrics registry and its exporters."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc_and_value(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("events_total", "help text")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_are_independent(self) -> None:
        c = MetricsRegistry().counter("x")
        c.inc(2, kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 2
        assert c.value(kind="b") == 3
        assert c.value() == 0

    def test_label_order_does_not_matter(self) -> None:
        c = MetricsRegistry().counter("x")
        c.inc(1, a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_counter_cannot_decrease(self) -> None:
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_and_fraction_values(self) -> None:
        g = MetricsRegistry().gauge("util")
        g.set(Fraction(2, 3))
        assert g.value() == Fraction(2, 3)

    def test_inc(self) -> None:
        g = MetricsRegistry().gauge("x")
        g.inc(5)
        g.inc(-2)
        assert g.value() == 3


class TestHistogram:
    def test_observe_buckets(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(22.5)

    def test_prometheus_cumulative_buckets(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="10.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_empty_buckets_rejected(self) -> None:
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("x", buckets=())

    def test_bucket_boundaries_are_inclusive(self) -> None:
        # Prometheus buckets are upper-inclusive: v <= le counts, and
        # the counts are cumulative across buckets.
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (1.0, 10.0, 10.0, 100.0, 1000.0):
            h.observe(v)
        state = h._series[()]
        assert state["counts"] == [1, 3, 4]  # cumulative, 1000 overflows
        assert state["count"] == 5

    def test_buckets_sorted_on_construction(self) -> None:
        h = MetricsRegistry().histogram("x", buckets=(10.0, 1.0, 5.0))
        assert h.buckets == (1.0, 5.0, 10.0)

    def test_quantile_interpolates_within_bucket(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank 2 of 4 lands in the (1, 2] bucket (cumulative 1 -> 3).
        assert h.quantile(0.5) == pytest.approx(1.5)
        # rank 4 of 4 is the last finite bucket's upper edge.
        assert h.quantile(1.0) == pytest.approx(4.0)
        assert h.quantile(0.0) == pytest.approx(0.0)

    def test_quantile_overflow_clamps_to_last_bucket(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_empty_or_unknown_series_is_none(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        assert h.quantile(0.5) is None
        h.observe(0.5, exp="F18")
        assert h.quantile(0.5, exp="NOPE") is None

    def test_quantile_out_of_range_rejected(self) -> None:
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_labelled_prometheus_keeps_le_last(self) -> None:
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5, exp="F18")
        text = reg.to_prometheus()
        assert 'lat_bucket{exp="F18",le="1.0"} 1' in text
        assert 'lat_bucket{exp="F18",le="+Inf"} 1' in text
        assert 'lat_count{exp="F18"} 1' in text

    def test_merge_json_roundtrip(self) -> None:
        src = MetricsRegistry()
        h = src.histogram("lat", "kernel steps", buckets=(1.0, 10.0))
        h.observe(0.5, opcode="mac")
        h.observe(5.0, opcode="mac")
        h.observe(20.0, opcode="min")
        snapshot = json.loads(src.dump_json())

        dst = MetricsRegistry()
        dst.merge_json(snapshot)
        merged = dst.get("lat")
        assert isinstance(merged, Histogram)
        assert merged.count(opcode="mac") == 2
        assert merged.sum(opcode="mac") == pytest.approx(5.5)
        assert merged.quantile(0.5, opcode="mac") == pytest.approx(
            h.quantile(0.5, opcode="mac")
        )
        assert dst.to_prometheus() == src.to_prometheus()
        # Merging the same snapshot again adds (worker-merge semantics).
        dst.merge_json(snapshot)
        assert merged.count(opcode="mac") == 4

    def test_merge_json_bucket_mismatch_raises(self) -> None:
        src = MetricsRegistry()
        src.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        snapshot = json.loads(src.dump_json())
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(2.0, 20.0))
        with pytest.raises(ValueError, match="bucket mismatch"):
            dst.merge_json(snapshot)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self) -> None:
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self) -> None:
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_prometheus_text_format(self) -> None:
        reg = MetricsRegistry()
        reg.counter("events_total", "things that happened").inc(7, exp="F18")
        reg.gauge("util").set(Fraction(1, 2))
        text = reg.to_prometheus()
        assert "# HELP events_total things that happened" in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{exp="F18"} 7' in text
        assert "util 0.5" in text

    def test_json_roundtrips(self) -> None:
        reg = MetricsRegistry()
        reg.gauge("g").set(Fraction(1, 4), n=12)
        doc = json.loads(reg.dump_json())
        assert doc["g"]["type"] == "gauge"
        assert doc["g"]["series"] == [{"labels": {"n": "12"}, "value": 0.25}]

    def test_reset_and_len(self) -> None:
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2 and "a" in reg
        reg.reset()
        assert len(reg) == 0

    def test_global_registry_swap(self) -> None:
        mine = MetricsRegistry()
        prev = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(prev)


class TestLabelHardening:
    """Reserved names and non-scalar values fail loudly at call time."""

    @pytest.mark.parametrize("name", ["__name__", "le", "quantile", "9lives",
                                      "has-dash", "__hidden"])
    def test_reserved_or_invalid_label_names_rejected(self, name) -> None:
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid or reserved"):
            reg.counter("c").inc(**{name: "x"})
        with pytest.raises(ValueError, match="invalid or reserved"):
            reg.gauge("g").set(1, **{name: "x"})
        with pytest.raises(ValueError, match="invalid or reserved"):
            reg.histogram("h").observe(1.0, **{name: "x"})

    def test_non_scalar_label_values_rejected(self) -> None:
        reg = MetricsRegistry()
        with pytest.raises(TypeError, match="must be str"):
            reg.counter("c").inc(exp=["F18"])
        with pytest.raises(TypeError, match="must be str"):
            reg.gauge("g").set(1, exp={"a": 1})
        with pytest.raises(TypeError, match="must be str"):
            reg.gauge("g").set(1, exp=None)

    def test_scalar_label_values_still_accepted(self) -> None:
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(1, n=12)                     # int (used all over the repo)
        g.set(2, ratio=Fraction(1, 3))     # Fraction
        g.set(3, flag=True, name="x")      # bool + str
        assert g.value(n=12) == 1

    def test_label_values_escaped_in_prometheus_text(self) -> None:
        reg = MetricsRegistry()
        reg.gauge("g").set(1, exp='quo"te\nnew\\line')
        text = reg.to_prometheus()
        assert 'exp="quo\\"te\\nnew\\\\line"' in text
        # Still one metric line (the newline did not split it).
        lines = [l for l in text.splitlines() if l.startswith("g{")]
        assert len(lines) == 1
