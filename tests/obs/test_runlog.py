"""Run-ledger unit tests: identity, scopes, merge, integrity, queries."""

from __future__ import annotations

import json

import pytest

from repro.obs import runlog
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate run-close metrics from other tests."""
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(MetricsRegistry())


# ----------------------------------------------------------------------
# Identity
# ----------------------------------------------------------------------

def test_run_id_deterministic():
    a = runlog.make_run_id("campaign", {"seed": 0, "configs": ["x"]})
    b = runlog.make_run_id("campaign", {"configs": ["x"], "seed": 0})
    assert a == b
    assert a.startswith("campaign-")
    assert len(a.split("-")[-1]) == 12


def test_run_id_sensitive_to_params_and_entry():
    base = runlog.make_run_id("campaign", {"seed": 0})
    assert runlog.make_run_id("campaign", {"seed": 1}) != base
    assert runlog.make_run_id("verify", {"seed": 0}) != base


def test_ledger_path_respects_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path / "led"))
    assert runlog.ledger_path("r-1") == tmp_path / "led" / "r-1.jsonl"
    # Explicit override beats the environment.
    assert runlog.ledger_path("r-1", tmp_path) == tmp_path / "r-1.jsonl"


# ----------------------------------------------------------------------
# Scopes and emission
# ----------------------------------------------------------------------

def test_emit_is_noop_without_scope():
    assert runlog.current_run() is None
    runlog.emit("lint", ok=True)  # must not raise
    with runlog.task_scope("t"), runlog.stage_scope("s"):
        pass
    assert runlog.current_run_id() is None
    assert runlog.current_task() == ""


def test_run_scope_writes_ledger(tmp_path):
    with runlog.run_scope("verify", {"n": 5}, dir=tmp_path) as rl:
        assert rl is not None
        assert runlog.current_run_id() == rl.run_id
        with runlog.task_scope("task-a"):
            assert runlog.current_task() == "task-a"
            runlog.emit("oracle", ok=True)
        with runlog.stage_scope("trials", trials=3):
            pass
    path = tmp_path / f"{rl.run_id}.jsonl"
    events = [json.loads(line) for line in path.read_text().splitlines()]
    names = [ev["event"] for ev in events]
    assert names == [
        "run_start", "oracle", "stage_start", "stage_end", "run_end",
    ]
    assert events[1]["task"] == "task-a"
    assert events[2]["task"] is None
    assert events[3]["dur_s"] >= 0
    assert events[-1]["ok"] is True
    assert [ev["seq"] for ev in events] == list(range(len(events)))
    assert all(ev["v"] == runlog.RUNLOG_SCHEMA_VERSION for ev in events)
    assert runlog.verify_ledger(events) == []


def test_nested_run_scope_joins_active_run(tmp_path):
    with runlog.run_scope("faults", {"seed": 0}, dir=tmp_path) as outer:
        with runlog.run_scope("campaign", {"seed": 0}, dir=tmp_path) as inner:
            assert inner is outer
            runlog.emit("backend", backend="reference")
    assert len(list(tmp_path.glob("*.jsonl"))) == 1


def test_disabled_via_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNLOG", "0")
    with runlog.run_scope("verify", {}, dir=tmp_path) as rl:
        assert rl is None
        runlog.emit("oracle", ok=True)
    assert list(tmp_path.glob("*.jsonl")) == []


def test_error_path_flushes_partial_ledger(tmp_path):
    with pytest.raises(RuntimeError, match="boom"):
        with runlog.run_scope("verify", {"n": 5}, dir=tmp_path) as rl:
            runlog.emit("backend", backend="reference")
            raise RuntimeError("boom")
    events, problems = runlog.read_ledger(
        tmp_path / f"{rl.run_id}.jsonl"
    )
    assert problems == []
    names = [ev["event"] for ev in events]
    assert names == ["run_start", "backend", "error", "run_end"]
    assert events[2]["error"] == "RuntimeError"
    assert events[2]["message"] == "boom"
    assert events[-1]["ok"] is False
    assert runlog.current_run() is None  # scope fully unwound


def test_reserved_field_collision_rejected(tmp_path):
    with runlog.run_scope("verify", {}, dir=tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            runlog.emit("oracle", seq=7)


def test_run_close_metrics_published(tmp_path, _fresh_registry):
    with runlog.run_scope("verify", {"n": 5}, dir=tmp_path):
        runlog.emit("oracle", ok=True)
    series = {
        (name, tuple(sorted(s["labels"].items()))): s["value"]
        for name, m in _fresh_registry.to_json().items()
        for s in m["series"]
    }
    assert series[(
        "repro_runs_total", (("entry", "verify"), ("ok", "True")),
    )] == 1
    assert series[(
        "repro_run_events_total",
        (("entry", "verify"), ("event", "oracle")),
    )] == 1


# ----------------------------------------------------------------------
# Event-buffer cap
# ----------------------------------------------------------------------

def test_runlog_max_events_env(monkeypatch):
    assert runlog.runlog_max_events() == runlog.DEFAULT_MAX_EVENTS
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "500")
    assert runlog.runlog_max_events() == 500
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "bogus")
    assert runlog.runlog_max_events() == runlog.DEFAULT_MAX_EVENTS
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "1")
    assert runlog.runlog_max_events() == 2  # floor: run_start + run_end


def test_event_cap_drops_with_single_marker(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "5")
    with runlog.run_scope("verify", {"n": 5}, dir=tmp_path) as rl:
        for i in range(20):
            runlog.emit("oracle", ok=True, i=i)
    events, problems = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    assert problems == []
    names = [ev["event"] for ev in events]
    # run_start + 4 oracles fill the cap of 5; the single overflow
    # marker takes the next slot, and the terminal run_end always lands.
    assert names == [
        "run_start", "oracle", "oracle", "oracle", "oracle",
        "events_dropped", "run_end",
    ]
    marker = events[5]
    assert marker["limit"] == 5
    assert marker["dropped"] == 16
    # seq stays contiguous: the marker consumes exactly one seq.
    assert [ev["seq"] for ev in events] == list(range(len(events)))


def test_event_cap_terminal_events_always_kept(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "2")
    with pytest.raises(RuntimeError, match="boom"):
        with runlog.run_scope("verify", {}, dir=tmp_path) as rl:
            for _ in range(10):
                runlog.emit("oracle", ok=True)
            raise RuntimeError("boom")
    events, _ = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    names = [ev["event"] for ev in events]
    assert names[0] == "run_start"
    assert "events_dropped" in names
    assert names[-2:] == ["error", "run_end"]


def test_event_cap_publishes_dropped_metric(tmp_path, monkeypatch,
                                            _fresh_registry):
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "3")
    with runlog.run_scope("verify", {}, dir=tmp_path):
        for _ in range(6):
            runlog.emit("oracle", ok=True)
    doc = _fresh_registry.to_json()["repro_run_events_dropped_total"]
    [series] = doc["series"]
    assert series["labels"] == {"entry": "verify"}
    assert series["value"] == 4  # run_start + 2 kept of 6 emitted


def test_event_cap_applies_to_absorbed_workers(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNLOG_MAX_EVENTS", "4")
    with runlog.run_scope("campaign", {"seed": 0}, dir=tmp_path) as rl:
        payload = runlog.worker_payload()
        with runlog.worker_scope(payload, task="cfg-a") as wrl:
            for _ in range(10):
                runlog.emit("oracle", ok=True)
        rl.absorb(wrl.events)
    events, _ = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    assert [ev["seq"] for ev in events] == list(range(len(events)))
    assert sum(1 for ev in events if ev["event"] == "events_dropped") == 1
    assert rl.dropped > 0


def test_no_drops_means_no_marker(tmp_path):
    with runlog.run_scope("verify", {}, dir=tmp_path) as rl:
        runlog.emit("oracle", ok=True)
    events, _ = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    assert all(ev["event"] != "events_dropped" for ev in events)


# ----------------------------------------------------------------------
# Worker propagation
# ----------------------------------------------------------------------

def test_worker_scope_merge_matches_sequential(tmp_path):
    """A parent + two worker buffers == one sequential task sequence."""
    with runlog.run_scope("campaign", {"seed": 0}, dir=tmp_path) as rl:
        payload = runlog.worker_payload()
        buffers = []
        for name in ("cfg-a", "cfg-b"):
            # Simulate each worker in-process: worker_scope must shadow
            # the (forked) parent's active scope and restore it after.
            with runlog.worker_scope(payload, task=name) as wrl:
                assert wrl is not None and wrl is not rl
                runlog.emit("oracle", ok=True)
            buffers.append(wrl.events)
        assert runlog.current_run() is rl  # parent scope restored
        for events in buffers:
            rl.absorb(events)
    events, _ = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    assert [ev["seq"] for ev in events] == list(range(len(events)))
    assert [ev.get("task") for ev in events[1:-1]] == ["cfg-a", "cfg-b"]
    assert all(ev["run"] == rl.run_id for ev in events)
    assert runlog.verify_ledger(events) == []


def test_worker_scope_none_payload_records_nothing():
    with runlog.worker_scope(None, task="x") as rl:
        assert rl is None
        runlog.emit("oracle", ok=True)  # no-op


# ----------------------------------------------------------------------
# Integrity checks
# ----------------------------------------------------------------------

def _sample_events(tmp_path):
    with runlog.run_scope("verify", {"n": 5}, dir=tmp_path) as rl:
        with runlog.stage_scope("trials"):
            runlog.emit("oracle", ok=True)
    events, _ = runlog.read_ledger(tmp_path / f"{rl.run_id}.jsonl")
    return events


def test_verify_detects_tampered_seq(tmp_path):
    events = _sample_events(tmp_path)
    events[2]["seq"] = 99
    assert any("non-contiguous" in f for f in runlog.verify_ledger(events))


def test_verify_detects_missing_run_end(tmp_path):
    events = _sample_events(tmp_path)[:-1]
    assert any("run_end" in f for f in runlog.verify_ledger(events))


def test_verify_detects_unbalanced_stage(tmp_path):
    events = _sample_events(tmp_path)
    events = [ev for ev in events if ev["event"] != "stage_end"]
    for i, ev in enumerate(events):
        ev["seq"] = i
    assert any("unclosed stage" in f for f in runlog.verify_ledger(events))


def test_verify_detects_timestamp_regression(tmp_path):
    events = _sample_events(tmp_path)
    events[2]["ts"] = events[1]["ts"] - 10.0
    assert any("regression" in f for f in runlog.verify_ledger(events))


def test_verify_detects_orphan_run(tmp_path):
    events = _sample_events(tmp_path)
    events[1]["run"] = "other-000000000000"
    assert any("orphan" in f for f in runlog.verify_ledger(events))


def test_verify_detects_schema_mismatch(tmp_path):
    events = _sample_events(tmp_path)
    events[1]["v"] = 99
    assert any("schema version" in f for f in runlog.verify_ledger(events))


def test_read_ledger_reports_bad_lines(tmp_path):
    p = tmp_path / "x.jsonl"
    p.write_text('{"v": 1}\nnot json\n[1, 2]\n')
    events, problems = runlog.read_ledger(p)
    assert len(events) == 1
    assert len(problems) == 2


# ----------------------------------------------------------------------
# Queries: list / summarize / show / diff
# ----------------------------------------------------------------------

def test_list_runs_and_summarize(tmp_path):
    with runlog.run_scope("verify", {"n": 5}, dir=tmp_path):
        runlog.emit("oracle", ok=True)
    with runlog.run_scope("campaign", {"seed": 0}, dir=tmp_path):
        with runlog.task_scope("cfg-a"):
            runlog.emit("oracle", ok=True)
    runs = runlog.list_runs(tmp_path)
    assert len(runs) == 2
    assert {r["entry"] for r in runs} == {"verify", "campaign"}
    camp = next(r for r in runs if r["entry"] == "campaign")
    assert camp["ok"] is True
    assert camp["tasks"] == ["cfg-a"]
    assert camp["counts"]["oracle"] == 1


def test_format_show_smoke(tmp_path):
    events = _sample_events(tmp_path)
    text = runlog.format_show(events)
    assert "run_start" in text and "oracle" in text and "trials" in text


def test_format_diff_identical_and_differing(tmp_path):
    a = _sample_events(tmp_path)
    text, identical = runlog.format_diff(a, a, "a", "b")
    assert identical
    assert "identical" in text
    b = [dict(ev) for ev in a]
    b[2]["ok"] = False
    text, identical = runlog.format_diff(a, b, "a", "b")
    assert not identical


def test_strip_nondeterministic_removes_wall_clock(tmp_path):
    events = _sample_events(tmp_path)
    for ev in runlog.strip_nondeterministic(events):
        assert not (set(ev) & runlog.NONDETERMINISTIC_FIELDS)
