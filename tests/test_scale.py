"""Moderate-scale end-to-end runs (the sizes a paper reader would try).

These are deliberately larger than the unit tests — n up to 24 puts
~14k primitive firings through the cycle simulator — and bound the wall
time so a performance regression in the core loops is caught by the
ordinary test run, not just the benchmarks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import partition_transitive_closure
from repro.algorithms.transitive_closure import expected_regular_slots
from repro.algorithms.warshall import random_adjacency, warshall


@pytest.mark.parametrize("n,m,geometry", [(20, 4, "linear"), (24, 4, "mesh")])
def test_moderate_scale_end_to_end(n, m, geometry) -> None:
    t0 = time.perf_counter()
    impl = partition_transitive_closure(n=n, m=m, geometry=geometry)
    a = random_adjacency(n, 0.25, seed=n)
    res = impl.simulate(a)
    elapsed = time.perf_counter() - t0
    assert res.ok
    assert np.array_equal(res.output_matrix(n), warshall(a))
    assert res.busy == expected_regular_slots(n)
    assert impl.exec_plan.stall_cycles == 0
    # ~14k firings must stay comfortably interactive.
    assert elapsed < 20, f"end-to-end n={n} took {elapsed:.1f}s"


def test_utilization_approaches_one_at_scale() -> None:
    """Sec. 4.2: U -> 1; at n=29 (m | n+1) it is 0.869, exactly on formula."""
    from repro.core.metrics import tc_utilization

    impl = partition_transitive_closure(n=29, m=3, aligned=False)
    assert impl.report.utilization == tc_utilization(29)
    assert float(impl.report.utilization) > 0.85


def test_large_graph_construction_linear_memory() -> None:
    """Graph size is Theta(n^2 (n+1)) slot nodes, as designed."""
    from repro.algorithms.transitive_closure import tc_regular
    from repro.core.graph import NodeKind, node_counts

    n = 24
    c = node_counts(tc_regular(n))
    assert c[NodeKind.OP] + c[NodeKind.DELAY] == expected_regular_slots(n)
