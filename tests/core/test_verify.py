"""Tests for the randomized verification driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MIN_PLUS, partition_transitive_closure
from repro.algorithms.workloads import WORKLOADS
from repro.core.verify import verify_implementation


def test_clean_implementation_verifies() -> None:
    impl = partition_transitive_closure(n=8, m=3)
    report = verify_implementation(impl, trials=5, seed=1)
    assert report.ok
    assert report.correct == report.trials == 5
    assert report.stall_cycles == 0
    assert "OK" in report.summary()


def test_verify_with_workload_inputs() -> None:
    impl = partition_transitive_closure(n=12, m=4)
    extras = [fn() for fn in WORKLOADS.values()]
    report = verify_implementation(impl, trials=2, seed=2, extra_inputs=extras)
    assert report.ok
    assert report.trials == 2 + len(extras)


def test_verify_min_plus() -> None:
    impl = partition_transitive_closure(n=7, m=3, semiring=MIN_PLUS)
    report = verify_implementation(impl, trials=4, seed=3)
    assert report.ok


def test_verify_rejects_wrong_shape_extra() -> None:
    impl = partition_transitive_closure(n=6, m=3)
    with pytest.raises(ValueError, match="does not match"):
        verify_implementation(impl, trials=1, extra_inputs=[np.eye(4, dtype=bool)])


def test_verify_detects_sabotage() -> None:
    """Corrupting a planned firing time must be reported, not hidden."""
    impl = partition_transitive_closure(n=6, m=3)
    ep = impl.exec_plan
    victim = next(nid for nid in ep.fires if list(impl.dg.g.successors(nid)))
    cons = next(c for c in impl.dg.g.successors(victim) if c in ep.fires)
    ep.fires[victim] = (ep.fires[victim][0], ep.fires[cons][1] + 50)
    report = verify_implementation(impl, trials=2, seed=4)
    assert report.violation_trials == 2
    assert not report.ok
    assert "FAILED" in report.summary()
