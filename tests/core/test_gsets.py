"""Tests for G-set selection and scheduling (Figs. 18-20)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import (
    SCHEDULE_POLICIES,
    GSetPlan,
    ScheduleError,
    gset_dependences,
    infer_skew,
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)


def tc_gg(n: int) -> GGraph:
    return GGraph(tc_regular(n), group_by_columns)


class TestLinearGSets:
    def test_aligned_set_count_and_raggedness(self) -> None:
        n, m = 9, 3
        plan = make_linear_gsets(tc_gg(n), m)
        # Aligned: rows with k % m != 0 gain one ragged boundary set.
        ideal = n * (n + 1) // m
        assert len(plan.gsets) > ideal
        assert plan.boundary_sets() > 0
        assert plan.full_sets() + plan.boundary_sets() == len(plan.gsets)

    def test_packed_full_sets_when_divisible(self) -> None:
        n, m = 9, 5  # m | n+1
        plan = make_linear_gsets(tc_gg(n), m, aligned=False)
        assert len(plan.gsets) == n * (n + 1) // m
        assert plan.boundary_sets() == 0

    def test_every_gnode_covered_once(self) -> None:
        gg = tc_gg(7)
        for aligned in (True, False):
            plan = make_linear_gsets(gg, 3, aligned=aligned)
            seen = [g for s in plan.gsets for g in s.gids]
            assert sorted(seen) == sorted(gg.gnodes)

    def test_cells_are_consistent_lanes(self) -> None:
        """Aligned sets map G-column gamma to cell gamma mod m."""
        gg = tc_gg(7)
        m = 4
        plan = make_linear_gsets(gg, m)
        for s in plan.gsets:
            for gid, cell in zip(s.gids, s.cells):
                k, c = gid
                assert cell == (c + k) % m

    def test_aligned_dependences_drop_diagonal(self) -> None:
        """Skew-aligned blocks depend only on (k, B-1) and (k-1, B)."""
        plan = make_linear_gsets(tc_gg(8), 4, aligned=True)
        dag = gset_dependences(plan)
        for (k1, b1), (k2, b2) in dag.edges:
            assert (k2 - k1, b2 - b1) in {(0, 1), (1, 0)}

    def test_packed_dependences_include_diagonal(self) -> None:
        plan = make_linear_gsets(tc_gg(8), 3, aligned=False)
        dag = gset_dependences(plan)
        deltas = {(k2 - k1, b2 - b1) for (k1, b1), (k2, b2) in dag.edges}
        assert (1, 1) in deltas or (1, 0) in deltas

    def test_rejects_zero_cells(self) -> None:
        with pytest.raises(ScheduleError, match="at least one cell"):
            make_linear_gsets(tc_gg(5), 0)


class TestMeshGSets:
    def test_block_count_and_triangular_boundaries(self) -> None:
        n, m = 8, 4
        plan = make_mesh_gsets(tc_gg(n), m)
        assert plan.geometry == "mesh"
        assert plan.shape == (2, 2)
        # The skewed parallelogram leaves ragged (triangular) blocks.
        assert plan.boundary_sets() > 0
        seen = [g for s in plan.gsets for g in s.gids]
        assert len(seen) == n * (n + 1)

    def test_cells_within_shape(self) -> None:
        plan = make_mesh_gsets(tc_gg(8), 4)
        for s in plan.gsets:
            for pr, pc in s.cells:
                assert 0 <= pr < 2 and 0 <= pc < 2
            assert len(set(s.cells)) == len(s.cells)

    def test_explicit_rectangular_shape(self) -> None:
        plan = make_mesh_gsets(tc_gg(7), 6, shape=(2, 3))
        assert plan.shape == (2, 3)
        order = schedule_gsets(plan)
        verify_schedule(plan, order)

    def test_rejects_non_square_without_shape(self) -> None:
        with pytest.raises(ScheduleError, match="perfect square"):
            make_mesh_gsets(tc_gg(6), 5)

    def test_rejects_inconsistent_shape(self) -> None:
        with pytest.raises(ScheduleError, match="does not have"):
            make_mesh_gsets(tc_gg(6), 4, shape=(3, 3))

    def test_infer_skew_tc(self) -> None:
        assert infer_skew(tc_gg(6)) == 1

    def test_infer_skew_lu(self) -> None:
        from repro.algorithms.lu import lu_ggraph

        assert infer_skew(lu_ggraph(6)) == 0


class TestScheduling:
    @pytest.mark.parametrize("policy", sorted(SCHEDULE_POLICIES))
    def test_policies_produce_legal_orders(self, policy: str) -> None:
        for geometry, make in (
            ("linear", lambda gg: make_linear_gsets(gg, 3)),
            ("mesh", lambda gg: make_mesh_gsets(gg, 4)),
        ):
            plan = make(tc_gg(7))
            order = schedule_gsets(plan, policy)
            verify_schedule(plan, order)
            assert len(order) == len(plan.gsets)

    def test_vertical_policy_is_column_major_when_aligned(self) -> None:
        n, m = 8, 4
        plan = make_linear_gsets(tc_gg(n), m, aligned=True)
        order = schedule_gsets(plan, "vertical")
        cols = [s.sid[1] for s in order]
        assert cols == sorted(cols)  # never returns to an earlier column

    def test_custom_policy_callable(self) -> None:
        plan = make_linear_gsets(tc_gg(6), 3)
        order = schedule_gsets(plan, policy=lambda sid: (-sid[0], sid[1]))
        verify_schedule(plan, order)

    def test_verify_rejects_reordered_schedule(self) -> None:
        plan = make_linear_gsets(tc_gg(6), 3)
        order = schedule_gsets(plan)
        bad = list(reversed(order))
        with pytest.raises(ScheduleError, match="before its dependence"):
            verify_schedule(plan, bad)

    def test_verify_rejects_incomplete_schedule(self) -> None:
        plan = make_linear_gsets(tc_gg(6), 3)
        order = schedule_gsets(plan)
        with pytest.raises(ScheduleError, match="every G-set"):
            verify_schedule(plan, order[:-1])

    @given(n=st.integers(4, 9), m=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_schedule_always_legal(self, n: int, m: int) -> None:
        plan = make_linear_gsets(tc_gg(n), m)
        order = schedule_gsets(plan, "vertical")
        verify_schedule(plan, order)

    def test_set_comp_time_and_uniformity(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        for s in plan.gsets:
            assert s.comp_time(tc_gg8) == 8
            assert s.is_uniform(tc_gg8)
