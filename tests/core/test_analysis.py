"""Tests for the graph analyses (broadcast/flow/regularity/long edges)."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    communication_patterns,
    find_broadcasts,
    flow_directions,
    is_pipelined,
    long_edges,
    max_fanout,
)
from repro.core.graph import DependenceGraph, NodeKind, port


def broadcast_graph(fanout: int) -> DependenceGraph:
    dg = DependenceGraph("bcast")
    dg.add_input("src", pos=(0, 0))
    for i in range(fanout):
        dg.add_pass(f"c{i}", "src", pos=(1, i))
    return dg


def test_find_broadcasts_detects_fanout() -> None:
    dg = broadcast_graph(5)
    rep = find_broadcasts(dg)
    assert rep.count == 1
    assert rep.sources[0] == (("src", "out"), 5)
    assert rep.max_fanout == 5
    assert rep.total_fanout == 5
    assert max_fanout(dg) == 5
    assert not is_pipelined(dg)


def test_find_broadcasts_threshold() -> None:
    dg = broadcast_graph(2)
    assert find_broadcasts(dg, fanout_threshold=2).count == 0
    assert find_broadcasts(dg, fanout_threshold=1).count == 1


def test_outputs_do_not_count_as_consumers() -> None:
    dg = DependenceGraph()
    dg.add_input("src")
    for i in range(4):
        dg.add_output(f"o{i}", "src")
    assert find_broadcasts(dg).count == 0


def test_fanout_counted_per_port() -> None:
    """Forwarded operands on distinct ports are not a broadcast."""
    dg = DependenceGraph()
    for nid in ("a", "b", "c"):
        dg.add_input(nid)
    dg.add_op("m", "mac", {"a": "a", "b": "b", "c": "c"})
    dg.add_pass("p1", port("m", "b"))
    dg.add_pass("p2", port("m", "c"))
    dg.add_pass("p3", "m")
    assert find_broadcasts(dg, fanout_threshold=1).count == 0


def test_self_wiring_is_one_consumer() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_op("m", "mac", {"a": "x", "b": "x", "c": "x"})
    rep = find_broadcasts(dg, fanout_threshold=0)
    assert rep.sources[0] == (("x", "out"), 1)


def chain_graph(deltas: list[int]) -> DependenceGraph:
    dg = DependenceGraph("chain")
    dg.add_input("i", pos=(0,))
    prev = "i"
    x = 0
    for idx, d in enumerate(deltas):
        x += d
        nid = f"p{idx}"
        dg.add_pass(nid, prev, pos=(x,))
        prev = nid
    return dg


def test_flow_directions_unidirectional() -> None:
    dg = chain_graph([1, 1, 1])
    rep = flow_directions(dg)
    assert rep.is_unidirectional
    assert rep.bidirectional_dims() == ()


def test_flow_directions_bidirectional() -> None:
    dg = chain_graph([1, -1, 1])
    rep = flow_directions(dg)
    assert not rep.is_unidirectional
    assert rep.bidirectional_dims() == (0,)


def test_flow_directions_wrap() -> None:
    """A -(M-1) jump on a cyclic dimension counts as +1."""
    dg = chain_graph([1, 1, -2])  # positions 0,1,2,0 on a mod-3 ring
    rep = flow_directions(dg, wrap=(3,))
    assert rep.is_unidirectional


def test_flow_untagged_edges_counted() -> None:
    dg = DependenceGraph()
    dg.add_input("i", pos=(0,))
    dg.add_pass("p", "i", pos=(1,))
    dg.add_pass("q", "p")  # slot node without a position
    rep = flow_directions(dg)
    assert rep.untagged_edges == 1


def test_flow_ignores_io_edges() -> None:
    """Edges touching inputs/outputs are host wiring, not array flow."""
    dg = chain_graph([1, -5])  # i -> p0 -> p1; the input edge is ignored
    dg.add_output("o", "p1", pos=(0,))
    rep = flow_directions(dg)
    total = sum(sum(h.values()) for h in rep.displacements)
    assert total == 1  # only p0 -> p1 counted


def test_communication_patterns_uniform_vs_mixed() -> None:
    dg = DependenceGraph()
    dg.add_input("x", pos=(0, 0))
    dg.add_op("m1", "neg", {"a": "x"}, pos=(1, 0))
    dg.add_op("m2", "neg", {"a": "m1"}, pos=(2, 0))
    rep = communication_patterns(dg)
    assert rep.distinct == 1
    assert rep.dominant_fraction == 1.0
    dg.add_op("m3", "neg", {"a": "m1"}, pos=(5, 5))  # a different stencil
    rep = communication_patterns(dg)
    assert rep.distinct == 2
    assert rep.dominant_fraction == pytest.approx(2 / 3)


def test_long_edges() -> None:
    dg = DependenceGraph()
    dg.add_input("i", pos=(0, 0))
    dg.add_pass("near", "i", pos=(0, 1))
    dg.add_pass("far", "near", pos=(0, 9))
    hits = long_edges(dg, max_len=1)
    assert len(hits) == 1
    assert hits[0][0] == "near" and hits[0][1] == "far"
    assert long_edges(dg, max_len=10) == []


def test_long_edges_dims_filter() -> None:
    dg = DependenceGraph()
    dg.add_input("i", pos=(0, 0))
    dg.add_pass("p", "i", pos=(0, 0))
    dg.add_pass("q", "p", pos=(9, 0))
    assert long_edges(dg, dims=(1,)) == []
    assert len(long_edges(dg, dims=(0,))) == 1
