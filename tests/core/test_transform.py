"""Tests for the generic graph transformations (Fig. 4 toolkit)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import (
    expected_computed_ops,
    is_computed,
    run_graph,
    tc_full,
    tc_pruned,
)
from repro.algorithms.warshall import random_adjacency, warshall
from repro.core.analysis import find_broadcasts, max_fanout
from repro.core.graph import DependenceGraph, NodeKind, node_counts
from repro.core.transform import (
    TransformError,
    insert_delay,
    pipeline_broadcasts,
    prune_superfluous,
    reindex_positions,
)


def _superfluous_predicate(n: int):
    def pred(dg: DependenceGraph, nid) -> bool:
        _, k, i, j = nid
        return not is_computed(n, k, i, j)

    return pred


def test_prune_matches_paper_count() -> None:
    n = 5
    pruned = prune_superfluous(tc_full(n), _superfluous_predicate(n))
    pruned.validate()
    assert node_counts(pruned)[NodeKind.OP] == expected_computed_ops(n)


@given(n=st.integers(3, 6), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_prune_preserves_semantics(n: int, seed: int) -> None:
    a = random_adjacency(n, 0.35, seed=seed)
    pruned = prune_superfluous(tc_full(n), _superfluous_predicate(n))
    assert np.array_equal(run_graph(pruned, a), warshall(a))


def test_prune_equals_direct_generator() -> None:
    """Generic pruning and the Fig. 11 generator agree node-for-node."""
    n = 5
    generic = prune_superfluous(tc_full(n), _superfluous_predicate(n))
    direct = tc_pruned(n)
    generic_ops = set(generic.nodes_of_kind(NodeKind.OP))
    direct_ops = set(direct.nodes_of_kind(NodeKind.OP))
    assert generic_ops == direct_ops


def test_prune_missing_carrier_role() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_input("y")
    dg.add_op("d", "div", {"a": "x", "b": "y"})
    with pytest.raises(TransformError, match="no 'q' operand"):
        prune_superfluous(dg, lambda g, nid: nid == "d", carrier_role="q")


def test_prune_collapses_chains() -> None:
    """Consecutive superfluous nodes resolve to the first real producer."""
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_input("one")
    prev = "x"
    for i in range(3):
        dg.add_op(f"s{i}", "mac", {"a": prev, "b": prev, "c": "one"})
        prev = f"s{i}"
    dg.add_output("o", prev)
    out = prune_superfluous(dg, lambda g, nid: str(nid).startswith("s"))
    assert node_counts(out)[NodeKind.OP] == 0
    assert out.operands("o") == {"a": ("x", "out")}


def test_pipeline_kills_broadcasts() -> None:
    n = 5
    pruned = tc_pruned(n)
    assert max_fanout(pruned) > 3
    piped = pipeline_broadcasts(pruned, fanout_threshold=1)
    piped.validate()
    assert max_fanout(piped) == 1
    assert find_broadcasts(piped, fanout_threshold=1).count == 0


@given(n=st.integers(3, 6), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_pipeline_preserves_semantics(n: int, seed: int) -> None:
    a = random_adjacency(n, 0.35, seed=seed)
    piped = pipeline_broadcasts(tc_pruned(n), fanout_threshold=1)
    assert np.array_equal(run_graph(piped, a), warshall(a))


def test_pipeline_with_cyclic_order_key() -> None:
    """A flip-style order key keeps semantics (chain direction is free)."""
    n = 5
    a = random_adjacency(n, 0.4, seed=7)

    def cyclic_key(dg: DependenceGraph, nid) -> tuple:
        _, k, i, j = nid
        return (k, (i - k) % n, (j - k) % n)

    flipped = pipeline_broadcasts(tc_pruned(n), order_key=cyclic_key, fanout_threshold=1)
    assert max_fanout(flipped) == 1
    assert np.array_equal(run_graph(flipped, a), warshall(a))


def test_pipeline_leaves_outputs_direct() -> None:
    dg = DependenceGraph()
    dg.add_input("src", pos=(0,))
    for i in range(3):
        dg.add_output(f"o{i}", "src")
    piped = pipeline_broadcasts(dg, fanout_threshold=1)
    # Output fan-out is host wiring; nothing to chain.
    for i in range(3):
        assert piped.operands(f"o{i}") == {"a": ("src", "out")}


def test_pipeline_chains_through_pass_nodes() -> None:
    dg = DependenceGraph()
    dg.add_input("src", pos=(0, 0))
    for i in range(4):
        dg.add_pass(f"p{i}", "src", pos=(0, i + 1))
    piped = pipeline_broadcasts(dg, fanout_threshold=1)
    assert piped.operands("p0") == {"a": ("src", "out")}
    for i in range(1, 4):
        assert piped.operands(f"p{i}") == {"a": (f"p{i-1}", "out")}


def test_insert_delay_adds_timing_nodes() -> None:
    dg = DependenceGraph()
    dg.add_input("x", pos=(0, 0))
    dg.add_pass("p", "x", pos=(0, 3))
    dg.add_output("o", "p")
    out = insert_delay(dg, "p", "a", count=2, positions=[(0, 1), (0, 2)])
    out.validate()
    assert node_counts(out)[NodeKind.DELAY] == 2
    # Semantics unchanged, path length stretched by the two delays.
    from repro.core.evaluate import evaluate

    assert evaluate(out, {"x": 17})["o"] == 17
    assert out.critical_path_length() == dg.critical_path_length() + 2


def test_insert_delay_bad_args() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    with pytest.raises(TransformError, match="positive"):
        insert_delay(dg, "p", "a", count=0)
    with pytest.raises(TransformError, match="no operand"):
        insert_delay(dg, "p", "zz")


def test_reindex_positions() -> None:
    dg = DependenceGraph()
    dg.add_input("x", pos=(2, 3))
    dg.add_pass("p", "x", pos=(4, 5))
    out = reindex_positions(dg, lambda nid, p: (p[1], p[0]))
    assert out.pos("x") == (3, 2)
    assert out.pos("p") == (5, 4)
    # original untouched
    assert dg.pos("x") == (2, 3)
