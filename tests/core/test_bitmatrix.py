"""Bit-packed boolean kernels vs the unpacked Warshall oracle.

Word-boundary sizes (63/64/65, 127/128) are the regression surface: an
off-by-one in the pack layout or the pivot mask shows up exactly there.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitmatrix import (
    WORD_BITS,
    bit_column,
    closure_boolean,
    closure_words,
    pack_rows,
    popcount_rows,
    unpack_rows,
    words_per_row,
)
from repro.core.semiring import BOOLEAN, closure_reference

WORD_BOUNDARY_SIZES = (1, 2, 63, 64, 65, 127, 128)


def random_bool(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, n)) < density


class TestPacking:
    def test_words_per_row(self) -> None:
        assert words_per_row(0) == 0
        assert words_per_row(1) == 1
        assert words_per_row(64) == 1
        assert words_per_row(65) == 2
        with pytest.raises(ValueError):
            words_per_row(-1)

    @pytest.mark.parametrize("n", WORD_BOUNDARY_SIZES)
    def test_roundtrip(self, n: int) -> None:
        a = random_bool(n, 0.3, seed=n)
        words = pack_rows(a)
        assert words.shape == (n, words_per_row(n))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_rows(words, n), a)

    def test_column_bit_layout(self) -> None:
        # Column j lives in bit j % 64 of word j // 64.
        a = np.zeros((1, 130), dtype=np.bool_)
        a[0, 0] = a[0, 63] = a[0, 64] = a[0, 129] = True
        w = pack_rows(a)[0]
        assert w[0] == (np.uint64(1) | (np.uint64(1) << np.uint64(63)))
        assert w[1] == np.uint64(1)
        assert w[2] == np.uint64(1) << np.uint64(1)

    @pytest.mark.parametrize("n", (1, 64, 65, 130))
    def test_bit_column(self, n: int) -> None:
        a = random_bool(n, 0.4, seed=n + 1)
        words = pack_rows(a)
        for k in {0, n // 2, n - 1, min(n - 1, WORD_BITS - 1)}:
            assert np.array_equal(bit_column(words, k), a[:, k])

    def test_popcount(self) -> None:
        a = random_bool(100, 0.37, seed=5)
        assert np.array_equal(
            popcount_rows(pack_rows(a)), a.sum(axis=1, dtype=np.int64)
        )

    def test_shape_errors(self) -> None:
        with pytest.raises(ValueError):
            pack_rows(np.zeros(4, dtype=np.bool_))
        with pytest.raises(ValueError):
            unpack_rows(np.zeros((2, 2), dtype=np.uint64), 200)
        with pytest.raises(ValueError):
            closure_words(np.zeros((3, 1), dtype=np.uint64), 4)
        with pytest.raises(ValueError):
            closure_boolean(np.zeros((2, 3), dtype=np.bool_))


class TestClosureKernels:
    @pytest.mark.parametrize("n", WORD_BOUNDARY_SIZES)
    def test_reflexive_closure_matches_reference(self, n: int) -> None:
        a = random_bool(n, 2.5 / max(n, 1), seed=n)
        assert np.array_equal(
            closure_boolean(a), closure_reference(a, BOOLEAN)
        )

    @pytest.mark.parametrize("n", (3, 64, 65))
    def test_raw_kernel_no_diagonal_forcing(self, n: int) -> None:
        # closure_words evaluates the raw recurrence: with an all-False
        # input nothing becomes reachable (no reflexive pairs).
        zeros = np.zeros((n, words_per_row(n)), dtype=np.uint64)
        assert np.array_equal(closure_words(zeros, n), zeros)

    def test_empty_matrix(self) -> None:
        out = closure_boolean(np.zeros((0, 0), dtype=np.bool_))
        assert out.shape == (0, 0)

    def test_single_node(self) -> None:
        for bit in (False, True):
            a = np.array([[bit]], dtype=np.bool_)
            assert closure_boolean(a)[0, 0]  # reflexive either way

    def test_all_ones(self) -> None:
        n = 65
        a = np.ones((n, n), dtype=np.bool_)
        assert closure_boolean(a).all()

    def test_disconnected_components(self) -> None:
        # Two cliques with no cross edges stay mutually unreachable.
        n = 70
        a = np.zeros((n, n), dtype=np.bool_)
        a[:35, :35] = True
        a[35:, 35:] = True
        closed = closure_boolean(a)
        assert closed[:35, :35].all() and closed[35:, 35:].all()
        assert not closed[:35, 35:].any() and not closed[35:, :35].any()

    @pytest.mark.parametrize("seed", range(4))
    def test_dense_random(self, seed: int) -> None:
        a = random_bool(97, 0.15, seed=seed)
        assert np.array_equal(
            closure_boolean(a), closure_reference(a, BOOLEAN)
        )
