"""End-to-end tests for the partitioning façade."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import partition, partition_transitive_closure
from repro.algorithms.transitive_closure import tc_regular
from repro.algorithms.warshall import (
    floyd_warshall_reference,
    random_adjacency,
    warshall,
)
from repro.core.ggraph import group_by_columns
from repro.core.semiring import MIN_PLUS


class TestTurnkeyTC:
    def test_linear_end_to_end(self) -> None:
        impl = partition_transitive_closure(n=10, m=4)
        assert impl.report.geometry == "linear"
        a = random_adjacency(10, seed=3)
        assert np.array_equal(impl.run(a), warshall(a))

    def test_mesh_end_to_end(self) -> None:
        impl = partition_transitive_closure(n=8, m=4, geometry="mesh")
        assert impl.report.geometry == "mesh"
        a = random_adjacency(8, seed=4)
        assert np.array_equal(impl.run(a), warshall(a))

    def test_simulation_is_clean(self) -> None:
        impl = partition_transitive_closure(n=9, m=3)
        res = impl.simulate(random_adjacency(9, seed=5))
        assert res.ok
        assert res.memory_words > 0
        assert res.useful == 9 * 8 * 7

    def test_min_plus_shortest_paths(self) -> None:
        """The extension: the same array computes Floyd-Warshall."""
        n = 7
        impl = partition_transitive_closure(n=n, m=4, semiring=MIN_PLUS)
        rng = np.random.default_rng(0)
        w = np.where(rng.random((n, n)) < 0.4,
                     rng.integers(1, 9, (n, n)).astype(float), np.inf)
        got = impl.run(w)
        assert np.array_equal(got, floyd_warshall_reference(w))

    @given(
        n=st.integers(4, 8),
        m=st.integers(2, 6),
        seed=st.integers(0, 50),
        geometry=st.sampled_from(["linear", "mesh"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_configuration_correct(self, n, m, seed, geometry) -> None:
        if geometry == "mesh":
            side = int(m**0.5)
            m = max(1, side) ** 2
        impl = partition_transitive_closure(n=n, m=m, geometry=geometry)
        a = random_adjacency(n, 0.35, seed=seed)
        assert np.array_equal(impl.run(a), warshall(a))

    def test_unknown_geometry(self) -> None:
        with pytest.raises(ValueError, match="unknown geometry"):
            partition_transitive_closure(n=6, m=4, geometry="torus")


class TestGenericPartition:
    def test_partition_arbitrary_graph(self) -> None:
        impl = partition(tc_regular(7), group_by_columns, m=3)
        assert impl.report.m == 3
        assert impl.gg.grid_shape() == (7, 8)

    def test_policies_accepted(self) -> None:
        for policy in ("vertical", "horizontal", "wavefront"):
            impl = partition(tc_regular(6), group_by_columns, m=3, policy=policy)
            assert impl.report.total_time > 0

    def test_packed_option(self) -> None:
        aligned = partition(tc_regular(9), group_by_columns, m=5, aligned=True)
        packed = partition(tc_regular(9), group_by_columns, m=5, aligned=False)
        assert packed.report.total_time <= aligned.report.total_time
