"""Tests for G-graphs and grouping strategies (Figs. 5-6, 17, 22)."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import (
    expected_computed_ops,
    expected_regular_slots,
    tc_regular,
    tc_unidirectional,
)
from repro.algorithms.lu import lu_ggraph
from repro.core.ggraph import (
    GGraph,
    GroupingError,
    group_by_blocks,
    group_by_columns,
    group_by_diagonals,
    group_by_rows,
)
from repro.core.graph import DependenceGraph, NodeKind


class TestFig17GGraph:
    """The transitive-closure G-graph (diagonal-path grouping)."""

    def test_shape(self, tc_gg8) -> None:
        n = 8
        assert tc_gg8.grid_shape() == (n, n + 1)
        assert len(tc_gg8) == n * (n + 1)

    def test_uniform_time_n(self, tc_gg8) -> None:
        assert tc_gg8.is_uniform_time()
        assert all(gn.comp_time == 8 for gn in tc_gg8.gnodes.values())

    def test_total_and_useful_slots(self, tc_gg8) -> None:
        n = 8
        assert tc_gg8.total_slots() == expected_regular_slots(n)
        assert tc_gg8.total_useful() == expected_computed_ops(n)

    def test_single_communication_path(self, tc_gg8) -> None:
        """G-edges: right neighbour and down-left only (Fig. 17)."""
        assert set(tc_gg8.edge_deltas()) == {(0, 1), (1, -1)}
        assert tc_gg8.is_nearest_neighbour()

    def test_row_and_col_times(self, tc_gg8) -> None:
        assert tc_gg8.row_times(0) == (8,) * 9
        assert tc_gg8.col_times(0) == (8,) * 8

    def test_member_order_matches_chain_order(self, tc_gg8) -> None:
        """Slots inside a column G-node execute top to bottom."""
        for gid in [(0, 0), (3, 4), (7, 8)]:
            members = tc_gg8.gnodes[gid].members
            rows = [tc_gg8.dg.pos(nid)[1] for nid in members]
            assert rows == sorted(rows)

    def test_tags_census(self, tc_gg8) -> None:
        delay_col = tc_gg8.gnodes[(0, 8)]
        assert delay_col.tags == {"delay": 8}
        interior = tc_gg8.gnodes[(0, 3)]
        assert interior.tags.get("compute", 0) > 0

    def test_asap_times_monotone(self, tc_gg8) -> None:
        asap = tc_gg8.asap_times()
        assert asap[(0, 0)] == 0
        for (r, c), t in asap.items():
            for pred in tc_gg8.predecessors((r, c)):
                assert asap[pred] < t


class TestGroupingAlternatives:
    """Fig. 6: different groupings give different G-graph properties."""

    def test_rows_grouping_long_edges(self) -> None:
        gg = GGraph(tc_regular(6), group_by_rows)
        deltas = set(gg.edge_deltas())
        assert not gg.is_nearest_neighbour()  # the (1, n-1) wrap edges
        assert (1, 5) in deltas

    def test_diagonal_grouping_cyclic(self) -> None:
        with pytest.raises(GroupingError, match="cyclic"):
            GGraph(tc_regular(6), group_by_diagonals(7))

    def test_block_grouping(self) -> None:
        gg = GGraph(tc_regular(6), group_by_blocks(2, 2))
        assert sum(gn.comp_time for gn in gg.gnodes.values()) == 6 * 6 * 7
        assert max(gn.comp_time for gn in gg.gnodes.values()) == 4

    def test_block_grouping_rejects_bad_dims(self) -> None:
        with pytest.raises(ValueError, match=">= 1"):
            group_by_blocks(0, 2)

    def test_unregularized_graph_groups_with_irregular_edges(self) -> None:
        gg = GGraph(tc_unidirectional(6), group_by_columns)
        # Without the delay column the corner wrap shows up as a long edge.
        assert not gg.is_nearest_neighbour()


class TestVaryingTimes:
    """Sec. 4.3: LU-style monotone computation times."""

    def test_lu_row_uniform_level_decreasing(self) -> None:
        gg = lu_ggraph(7)
        times = [gg.row_times(k) for k in gg.rows]
        for row in times:
            assert len(set(row)) == 1  # uniform along the path
        firsts = [row[0] for row in times]
        assert firsts == sorted(firsts, reverse=True)  # decreasing levels
        assert not gg.is_uniform_time()


class TestGroupingValidation:
    def test_unassigned_slot_node_rejected(self) -> None:
        dg = DependenceGraph()
        dg.add_input("x", pos=(0, 0, 0))
        dg.add_pass("p", "x", pos=(0, 0, 1))
        with pytest.raises(GroupingError, match="not assigned"):
            GGraph(dg, lambda g, nid: None)

    def test_bad_gid_rejected(self) -> None:
        dg = DependenceGraph()
        dg.add_input("x")
        dg.add_pass("p", "x")
        with pytest.raises(GroupingError, match=r"\(row, col\)"):
            GGraph(dg, lambda g, nid: (1, 2, 3) if g.kind(nid).occupies_slot else None)

    def test_missing_position_rejected(self) -> None:
        dg = DependenceGraph()
        dg.add_input("x")
        dg.add_pass("p", "x")  # no pos
        with pytest.raises(GroupingError, match="lacks"):
            GGraph(dg, group_by_columns)

    def test_mapping_assignment_accepted(self) -> None:
        dg = DependenceGraph()
        dg.add_input("x", pos=(0, 0, 0))
        dg.add_pass("p", "x", pos=(0, 0, 0))
        dg.add_pass("q", "p", pos=(0, 0, 1))
        gg = GGraph(dg, {"p": (0, 0), "q": (0, 1)})
        assert gg.grid_shape() == (1, 2)
        assert gg.gnodes[(0, 0)].members == ("p",)

    def test_repr(self, tc_gg8) -> None:
        text = repr(tc_gg8)
        assert "72 G-nodes" in text and "8x9" in text
