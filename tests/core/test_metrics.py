"""Tests for the Sec. 4.1/4.2 performance measures."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from repro.core.metrics import (
    evaluate_schedule,
    memory_connections,
    schedule_io_profile,
    schedule_memory_traffic,
    schedule_total_time,
    tc_gset_count,
    tc_io_bandwidth,
    tc_linear_throughput,
    tc_mesh_throughput,
    tc_utilization,
)


def tc_gg(n: int) -> GGraph:
    return GGraph(tc_regular(n), group_by_columns)


class TestClosedForms:
    def test_throughput_formula(self) -> None:
        assert tc_linear_throughput(10, 5) == Fraction(5, 100 * 11)
        assert tc_mesh_throughput(10, 4) == tc_linear_throughput(10, 4)

    def test_utilization_tends_to_one(self) -> None:
        assert tc_utilization(3) == Fraction(2, 12)
        us = [float(tc_utilization(n)) for n in (5, 10, 50, 500)]
        assert us == sorted(us)
        assert us[-1] > 0.99

    def test_io_bandwidth(self) -> None:
        assert tc_io_bandwidth(10, 5) == Fraction(1, 2)

    def test_gset_count(self) -> None:
        assert tc_gset_count(9, 5) == 18

    def test_memory_connections(self) -> None:
        assert memory_connections("linear", 7) == 8
        assert memory_connections("mesh", 9) == 6
        with pytest.raises(ValueError, match="square"):
            memory_connections("mesh", 5)
        with pytest.raises(ValueError, match="unknown geometry"):
            memory_connections("hypercube", 8)


class TestScheduleMeasures:
    def test_packed_matches_paper_exactly_when_divisible(self) -> None:
        """m | n+1 and packed sets: the paper's closed forms hold exactly."""
        for n, m in [(9, 5), (11, 4), (7, 8)]:
            plan = make_linear_gsets(tc_gg(n), m, aligned=False)
            order = schedule_gsets(plan, "vertical")
            rep = evaluate_schedule(plan, order)
            assert rep.throughput == tc_linear_throughput(n, m)
            assert rep.utilization == tc_utilization(n)
            assert rep.occupancy == 1
            assert rep.overhead == 0

    def test_aligned_converges_to_paper(self) -> None:
        """Aligned (paper) scheme: boundary loss vanishes as m/n -> 0."""
        m = 3
        gaps = []
        for n in (8, 14, 20):
            plan = make_linear_gsets(tc_gg(n), m, aligned=True)
            order = schedule_gsets(plan, "vertical")
            rep = evaluate_schedule(plan, order)
            gaps.append(float(tc_utilization(n)) - float(rep.utilization))
        assert all(g > 0 for g in gaps)
        assert gaps == sorted(gaps, reverse=True)

    def test_mesh_same_throughput_class_as_linear(self) -> None:
        n, m = 8, 4
        lin = make_linear_gsets(tc_gg(n), m, aligned=False)
        mesh = make_mesh_gsets(tc_gg(n), m)
        rl = evaluate_schedule(lin, schedule_gsets(lin))
        rm = evaluate_schedule(mesh, schedule_gsets(mesh))
        # Same class up to boundary-set effects (partial linear blocks vs
        # the mesh's triangular sets): both within 1.5x of the ideal.
        ideal = n * n * (n + 1) // m
        assert ideal <= rl.total_time <= 1.5 * ideal
        assert ideal <= rm.total_time <= 1.5 * ideal

    def test_total_time_with_overheads(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        order = schedule_gsets(plan)
        base, _ = schedule_total_time(tc_gg8, order)
        total, ovh = schedule_total_time(tc_gg8, order, [2] * len(order))
        assert total == base + 2 * len(order)
        assert ovh == 2 * len(order)
        with pytest.raises(ValueError, match="one overhead entry"):
            schedule_total_time(tc_gg8, order, [1, 2])

    def test_io_profile_only_top_row_consumes(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        order = schedule_gsets(plan, "vertical")
        events, total = schedule_io_profile(plan, order)
        assert total == 8 * 8  # n^2 distinct input words
        input_sets = {s.sid for s in plan.gsets if s.sid[0] == 0}
        assert len(events) == len(input_sets)

    def test_io_steady_rate_near_m_over_n(self) -> None:
        """Aligned vertical scheduling sustains ~ m/n host rate (Fig. 21)."""
        n, m = 16, 4
        plan = make_linear_gsets(tc_gg(n), m, aligned=True)
        order = schedule_gsets(plan, "vertical")
        rep = evaluate_schedule(plan, order)
        paper = tc_io_bandwidth(n, m)
        assert Fraction(1, 2) * paper <= rep.io_steady <= 2 * paper

    def test_memory_traffic_counts_crossing_values(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        order = schedule_gsets(plan)
        words = schedule_memory_traffic(plan, order)
        assert words > 0
        # Single G-set per... a plan with all nodes in huge sets moves less.
        big = make_linear_gsets(tc_gg8, 9, aligned=False)
        big_words = schedule_memory_traffic(big, schedule_gsets(big))
        assert big_words < words

    def test_report_row_keys(self, tc_gg8) -> None:
        plan = make_linear_gsets(tc_gg8, 3)
        rep = evaluate_schedule(plan, schedule_gsets(plan))
        row = rep.row()
        for key in ("geometry", "m", "T", "U", "occupancy", "D_IO", "mem_ports"):
            assert key in row


class TestLossDecomposition:
    """The Fig. 22 occupancy identity, unit level."""

    def test_tc_uniform_has_zero_mixing(self, tc_gg8) -> None:
        from repro.core.metrics import boundary_loss, time_mixing_loss

        plan = make_linear_gsets(tc_gg8, 3)
        order = schedule_gsets(plan)
        assert time_mixing_loss(plan, order) == 0

    def test_identity_occ_plus_losses(self) -> None:
        from repro.algorithms.lu import lu_ggraph
        from repro.core.gsets import make_mesh_gsets
        from repro.core.metrics import boundary_loss, time_mixing_loss

        gg = lu_ggraph(9)
        for plan in (make_linear_gsets(gg, 3), make_mesh_gsets(gg, 4)):
            order = schedule_gsets(plan)
            rep = evaluate_schedule(plan, order)
            total = (
                rep.occupancy
                + time_mixing_loss(plan, order)
                + boundary_loss(plan, order)
            )
            assert total == 1

    def test_mesh_blocks_mix_times_on_lu(self) -> None:
        from repro.algorithms.lu import lu_ggraph
        from repro.core.gsets import make_mesh_gsets
        from repro.core.metrics import time_mixing_loss

        gg = lu_ggraph(9)
        plan = make_mesh_gsets(gg, 4)
        order = schedule_gsets(plan)
        assert time_mixing_loss(plan, order) > 0

    def test_empty_order_is_zero(self, tc_gg8) -> None:
        from repro.core.metrics import boundary_loss, time_mixing_loss

        plan = make_linear_gsets(tc_gg8, 3)
        assert time_mixing_loss(plan, []) == 0
        assert boundary_loss(plan, []) == 0
