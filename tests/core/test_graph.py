"""Tests for the dependence-graph IR."""

from __future__ import annotations

import pytest

from repro.core.graph import (
    Axis,
    DependenceGraph,
    GraphError,
    NodeKind,
    PortRef,
    node_counts,
    port,
)


def small_graph() -> DependenceGraph:
    dg = DependenceGraph("small")
    dg.add_input("x", pos=(0, 0))
    dg.add_input("y", pos=(0, 1))
    dg.add_const("one", True)
    dg.add_op("m", "mac", {"a": "x", "b": "y", "c": "one"}, pos=(1, 0))
    dg.add_pass("p", "m", pos=(1, 1))
    dg.add_output("o", "p")
    return dg


def test_construction_and_counts() -> None:
    dg = small_graph()
    dg.validate()
    c = node_counts(dg)
    assert c[NodeKind.INPUT] == 2
    assert c[NodeKind.CONST] == 1
    assert c[NodeKind.OP] == 1
    assert c[NodeKind.PASS] == 1
    assert c[NodeKind.OUTPUT] == 1
    assert len(dg) == 6
    assert "m" in dg and "zzz" not in dg


def test_inputs_outputs_order() -> None:
    dg = small_graph()
    assert dg.inputs == ("x", "y")
    assert dg.outputs == ("o",)


def test_duplicate_node_rejected() -> None:
    dg = small_graph()
    with pytest.raises(GraphError, match="twice"):
        dg.add_input("x")


def test_unknown_opcode_rejected() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    with pytest.raises(GraphError, match="unknown opcode"):
        dg.add_op("bad", "frobnicate", {"a": "x"})


def test_wrong_roles_rejected() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    with pytest.raises(GraphError, match="requires roles"):
        dg.add_op("m", "mac", {"a": "x", "b": "x"})


def test_edge_from_unknown_node_rejected() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    with pytest.raises(GraphError, match="unknown node"):
        dg.add_op("m", "mac", {"a": "x", "b": "ghost", "c": "x"})


def test_unknown_output_port_rejected() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    with pytest.raises(GraphError, match="no output port"):
        dg.add_pass("q", port("p", "b"))


def test_op_forwarding_ports() -> None:
    dg = small_graph()
    assert dg.output_ports("m") == ("out", "a", "b", "c")
    assert dg.output_ports("p") == ("out",)


def test_same_source_multiple_roles() -> None:
    """An op may read one producer on several ports (boundary self-wiring)."""
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_op("m", "mac", {"a": "x", "b": "x", "c": "x"})
    dg.validate()
    assert dg.operands("m") == {"a": ("x", "out"), "b": ("x", "out"), "c": ("x", "out")}


def test_consumers_by_port() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_input("y")
    dg.add_op("m", "mac", {"a": "x", "b": "x", "c": "y"})
    dg.add_pass("f", port("m", "b"))
    assert dg.consumers("m") == [("f", "a")]
    assert dg.consumers("x") == [("m", "a"), ("m", "b")]
    assert ("f", "a") in dg.consumers("m", out_port="b")
    assert dg.consumers("m", out_port="out") == []


def test_rewire_moves_operand() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_input("y")
    dg.add_pass("p", "x")
    dg.rewire("p", "a", "y")
    assert dg.operands("p") == {"a": ("y", "out")}
    assert not dg.g.has_edge("x", "p")
    assert dg.g.has_edge("y", "p")


def test_rewire_keeps_shared_structural_edge() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_input("y")
    dg.add_op("m", "mac", {"a": "x", "b": "x", "c": "y"})
    dg.rewire("m", "b", "y")
    # a still reads x, so the x->m edge must survive.
    assert dg.g.has_edge("x", "m")
    assert dg.operands("m")["b"] == ("y", "out")


def test_rewire_unknown_role() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    with pytest.raises(GraphError, match="no operand role"):
        dg.rewire("p", "zz", "x")


def test_remove_node_requires_no_consumers() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    with pytest.raises(GraphError, match="still feeds"):
        dg.remove_node("x")
    dg2 = DependenceGraph()
    dg2.add_input("x")
    dg2.add_input("dead")
    dg2.remove_node("dead")
    assert "dead" not in dg2
    assert dg2.inputs == ("x",)


def test_validate_detects_missing_role_after_manual_edit() -> None:
    dg = small_graph()
    del dg.g.nodes["m"]["operands"]["b"]
    with pytest.raises(GraphError, match="has ports"):
        dg.validate()


def test_topological_order_and_critical_path() -> None:
    dg = small_graph()
    order = dg.topological_order()
    assert order.index("x") < order.index("m") < order.index("p") < order.index("o")
    # x -> m(1) -> p(1) -> o : two slot nodes on the longest path.
    assert dg.critical_path_length() == 2


def test_cycle_detected() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    dg.g.add_edge("p", "p2")  # forge a bad edge to form a cycle
    dg.g.add_edge("p2", "p")
    with pytest.raises(GraphError, match="cycle"):
        dg.topological_order()


def test_copy_is_independent() -> None:
    dg = small_graph()
    cp = dg.copy("clone")
    cp.rewire("p", "a", "x")
    assert dg.operands("p") == {"a": ("m", "out")}
    assert cp.operands("p") == {"a": ("x", "out")}
    assert cp.name == "clone"


def test_positions() -> None:
    dg = small_graph()
    assert dg.pos("m") == (1, 0)
    dg.set_pos("m", (9, 9))
    assert dg.pos("m") == (9, 9)
    assert dg.pos("one") is None


def test_node_view() -> None:
    dg = small_graph()
    view = dg.node("m")
    assert view.kind is NodeKind.OP
    assert view.opcode == "mac"
    assert view.comp_time == 1
    cview = dg.node("one")
    assert cview.value is True


def test_axis_tags_recorded() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x", axis=Axis.HORIZONTAL)
    assert dg.g.edges["x", "p"]["axis"] is Axis.HORIZONTAL


def test_kind_properties() -> None:
    assert NodeKind.OP.is_compute
    assert not NodeKind.PASS.is_compute
    for k in (NodeKind.OP, NodeKind.PASS, NodeKind.DELAY):
        assert k.occupies_slot
    for k in (NodeKind.INPUT, NodeKind.CONST, NodeKind.OUTPUT):
        assert not k.occupies_slot


def test_portref_helpers() -> None:
    ref = port("m", "b")
    assert isinstance(ref, PortRef)
    assert ref.node == "m" and ref.port == "b"
