"""Tests for the semiring algebra and the closure oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_MIN,
    MIN_PLUS,
    REAL,
    SEMIRINGS,
    Semiring,
    closure_reference,
)

IDEMPOTENT = [BOOLEAN, MIN_PLUS, MAX_MIN]


def _bool_values():
    return st.booleans()


def _minplus_values():
    return st.one_of(st.just(float("inf")), st.integers(0, 50).map(float))


VALUE_STRATEGIES = {
    "boolean": _bool_values(),
    "min_plus": _minplus_values(),
    "max_min": st.integers(0, 50).map(float),
    "counting": st.integers(0, 100),
}


@pytest.mark.parametrize("sr", IDEMPOTENT, ids=lambda s: s.name)
class TestIdempotentLaws:
    @given(data=st.data())
    def test_add_idempotent(self, sr: Semiring, data) -> None:
        a = data.draw(VALUE_STRATEGIES[sr.name])
        assert sr.add(a, a) == a

    @given(data=st.data())
    def test_identities(self, sr: Semiring, data) -> None:
        a = data.draw(VALUE_STRATEGIES[sr.name])
        assert sr.add(a, sr.zero) == a
        assert sr.mul(a, sr.one) == a

    @given(data=st.data())
    def test_mac_collapses_on_one(self, sr: Semiring, data) -> None:
        # The superfluous-node argument: a (+) (a (x) one) == a.
        a = data.draw(VALUE_STRATEGIES[sr.name])
        assert sr.mac(a, a, sr.one) == a
        assert sr.mac(a, sr.one, a) == a


@pytest.mark.parametrize("sr", list(SEMIRINGS.values()), ids=lambda s: s.name)
@given(data=st.data())
@settings(max_examples=30)
def test_semiring_axioms(sr: Semiring, data) -> None:
    """Associativity, commutativity of (+), distributivity (scalar)."""
    strat = VALUE_STRATEGIES.get(sr.name, st.integers(0, 20).map(float))
    a, b, c = (data.draw(strat) for _ in range(3))
    assert sr.add(a, b) == sr.add(b, a)
    assert sr.add(sr.add(a, b), c) == sr.add(a, sr.add(b, c))
    assert sr.mul(sr.mul(a, b), c) == pytest.approx(sr.mul(a, sr.mul(b, c)))
    lhs = sr.mul(a, sr.add(b, c))
    rhs = sr.add(sr.mul(a, b), sr.mul(a, c))
    assert lhs == pytest.approx(rhs)


def test_superfluous_pruning_support_flags() -> None:
    assert BOOLEAN.supports_superfluous_pruning()
    assert MIN_PLUS.supports_superfluous_pruning()
    assert MAX_MIN.supports_superfluous_pruning()
    assert not COUNTING.supports_superfluous_pruning()
    assert not REAL.supports_superfluous_pruning()


def test_matrix_forces_diagonal() -> None:
    a = np.zeros((3, 3), dtype=bool)
    m = BOOLEAN.matrix(a)
    assert m[0, 0] and m[1, 1] and m[2, 2]
    w = MIN_PLUS.matrix(np.full((2, 2), 5.0))
    assert w[0, 0] == 0.0 and w[1, 1] == 0.0


def test_matrix_rejects_non_square() -> None:
    with pytest.raises(ValueError, match="square"):
        BOOLEAN.matrix(np.zeros((2, 3), dtype=bool))


def test_semiring_matmul_boolean() -> None:
    a = np.array([[1, 0], [1, 1]], dtype=bool)
    b = np.array([[0, 1], [1, 0]], dtype=bool)
    got = BOOLEAN.matmul(a, b)
    assert np.array_equal(got, (a.astype(int) @ b.astype(int)) > 0)


def test_semiring_matmul_min_plus() -> None:
    inf = np.inf
    a = np.array([[0.0, 2.0], [inf, 0.0]])
    got = MIN_PLUS.matmul(a, a)
    expected = np.array([[0.0, 2.0], [inf, 0.0]])
    assert np.array_equal(got, expected)


def test_semiring_matmul_shape_mismatch() -> None:
    with pytest.raises(ValueError, match="mismatch"):
        BOOLEAN.matmul(np.zeros((2, 3), dtype=bool), np.zeros((2, 3), dtype=bool))


def test_closure_reference_boolean_small() -> None:
    # 0 -> 1 -> 2 implies 0 -> 2.
    a = np.zeros((3, 3), dtype=bool)
    a[0, 1] = a[1, 2] = True
    c = closure_reference(a)
    assert c[0, 2]
    assert not c[2, 0]


def test_closure_reference_min_plus_is_shortest_path() -> None:
    inf = np.inf
    w = np.array(
        [
            [0.0, 1.0, inf],
            [inf, 0.0, 1.0],
            [inf, inf, 0.0],
        ]
    )
    c = closure_reference(w, MIN_PLUS)
    assert c[0, 2] == 2.0


def test_random_matrix_has_diagonal(rng) -> None:
    for sr in (BOOLEAN, MIN_PLUS, MAX_MIN, COUNTING):
        m = sr.random_matrix(6, rng)
        assert np.all(np.diag(m) == sr.diagonal)


@given(n=st.integers(2, 7), seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_closure_reference_idempotent_fixpoint(n: int, seed: int) -> None:
    """Closing a closed matrix changes nothing (A+ is a fixpoint)."""
    rng = np.random.default_rng(seed)
    a = BOOLEAN.random_matrix(n, rng)
    c = closure_reference(a)
    assert np.array_equal(closure_reference(c), c)
