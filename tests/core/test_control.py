"""Tests for the control-complexity census."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.control import control_complexity
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets


@pytest.fixture(scope="module")
def gg12():
    return GGraph(tc_regular(12), group_by_columns)


def test_linear_contexts_bounded(gg12) -> None:
    """Each linear cell needs only a handful of contexts, constant in n."""
    plan = make_linear_gsets(gg12, 4)
    rep = control_complexity(plan, schedule_gsets(plan))
    assert rep.geometry == "linear"
    assert rep.max_per_cell <= 4  # interior / left-end / right-end / idle
    gg_large = GGraph(tc_regular(16), group_by_columns)
    plan_large = make_linear_gsets(gg_large, 4)
    rep_large = control_complexity(plan_large, schedule_gsets(plan_large))
    assert rep_large.max_per_cell == rep.max_per_cell  # n-independent


def test_packed_linear_is_simplest(gg12) -> None:
    """Full packed sets: every cell sees the same few contexts."""
    gg = GGraph(tc_regular(11), group_by_columns)  # m | n+1
    plan = make_linear_gsets(gg, 4, aligned=False)
    rep = control_complexity(plan, schedule_gsets(plan))
    assert rep.set_shapes <= 4
    assert rep.max_per_cell <= 3


def test_mesh_contexts_and_shapes(gg12) -> None:
    plan = make_mesh_gsets(gg12, 4)
    rep = control_complexity(plan, schedule_gsets(plan))
    assert rep.geometry == "mesh"
    assert rep.max_per_cell >= 2
    assert rep.set_shapes >= 2  # full blocks + triangular boundaries


def test_per_cell_covers_every_cell(gg12) -> None:
    plan = make_linear_gsets(gg12, 4)
    rep = control_complexity(plan, schedule_gsets(plan))
    assert set(rep.per_cell) == {0, 1, 2, 3}
    assert rep.distinct_total >= 1
    assert rep.mean_per_cell <= rep.max_per_cell


def test_empty_schedule() -> None:
    from repro.core.gsets import GSetPlan

    gg = GGraph(tc_regular(5), group_by_columns)
    plan = GSetPlan(gg=gg, gsets=[], geometry="linear", m=2, shape=(1, 2))
    rep = control_complexity(plan, [])
    assert rep.max_per_cell == 0
    assert rep.mean_per_cell == 0.0
    assert rep.set_shapes == 0
