"""Tests for the functional graph interpreter."""

from __future__ import annotations

import math

import pytest

from repro.core.evaluate import OPCODE_SEMANTICS, evaluate, evaluate_full
from repro.core.graph import DependenceGraph, GraphError, NodeKind, port
from repro.core.semiring import BOOLEAN, MIN_PLUS, REAL


def test_mac_boolean() -> None:
    dg = DependenceGraph()
    dg.add_input("a")
    dg.add_input("b")
    dg.add_input("c")
    dg.add_op("m", "mac", {"a": "a", "b": "b", "c": "c"})
    dg.add_output("o", "m")
    out = evaluate(dg, {"a": False, "b": True, "c": True})
    assert out["o"] is True
    out = evaluate(dg, {"a": False, "b": True, "c": False})
    assert out["o"] is False


def test_mac_min_plus() -> None:
    dg = DependenceGraph()
    for nid in ("a", "b", "c"):
        dg.add_input(nid)
    dg.add_op("m", "mac", {"a": "a", "b": "b", "c": "c"})
    dg.add_output("o", "m")
    out = evaluate(dg, {"a": 7.0, "b": 2.0, "c": 3.0}, MIN_PLUS)
    assert out["o"] == 5.0  # min(7, 2+3)


@pytest.mark.parametrize(
    "opcode,operands,expected",
    [
        ("add", {"a": 3.0, "b": 4.0}, 7.0),
        ("sub", {"a": 3.0, "b": 4.0}, -1.0),
        ("mul", {"a": 3.0, "b": 4.0}, 12.0),
        ("div", {"a": 8.0, "b": 4.0}, 2.0),
        ("msub", {"a": 10.0, "b": 2.0, "c": 3.0}, 4.0),
        ("neg", {"a": 5.0}, -5.0),
        ("recip", {"a": 4.0}, 0.25),
    ],
)
def test_field_opcodes(opcode: str, operands: dict, expected: float) -> None:
    dg = DependenceGraph()
    for nid in operands:
        dg.add_input(nid)
    dg.add_op("op", opcode, {k: k for k in operands})
    dg.add_output("o", "op")
    out = evaluate(dg, operands, REAL)
    assert out["o"] == pytest.approx(expected)


def test_rotation_opcodes_annihilate() -> None:
    dg = DependenceGraph()
    for nid in ("x", "y"):
        dg.add_input(nid)
    dg.add_op("g", "rotg", {"a": "x", "b": "y"})
    dg.add_op("r1", "rota", {"a": "x", "b": "y", "r": "g"})
    dg.add_op("r2", "rotb", {"a": "x", "b": "y", "r": port("r1", "r")})
    dg.add_output("top", "r1")
    dg.add_output("bot", "r2")
    out = evaluate(dg, {"x": 3.0, "y": 4.0}, REAL)
    assert out["top"] == pytest.approx(5.0)  # hypot(3, 4)
    assert out["bot"] == pytest.approx(0.0)  # annihilated


def test_rotg_zero_vector() -> None:
    fn = OPCODE_SEMANTICS["rotg"]
    assert fn(REAL, a=0.0, b=0.0) == (1.0, 0.0)


def test_pass_delay_const_chain() -> None:
    dg = DependenceGraph()
    dg.add_const("c", 42)
    dg.add_pass("p", "c")
    dg.add_delay("d", "p")
    dg.add_output("o", "d")
    assert evaluate(dg, {})["o"] == 42


def test_forwarding_ports_carry_operands() -> None:
    dg = DependenceGraph()
    for nid in ("a", "b", "c"):
        dg.add_input(nid)
    dg.add_op("m", "mac", {"a": "a", "b": "b", "c": "c"})
    dg.add_output("fwd_b", port("m", "b"))
    dg.add_output("fwd_c", port("m", "c"))
    out = evaluate(dg, {"a": False, "b": True, "c": False})
    assert out["fwd_b"] is True
    assert out["fwd_c"] is False


def test_missing_input_raises() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_output("o", "x")
    with pytest.raises(GraphError, match="no value supplied"):
        evaluate(dg, {})


def test_evaluate_full_exposes_every_node() -> None:
    dg = DependenceGraph()
    dg.add_input("x")
    dg.add_pass("p", "x")
    dg.add_output("o", "p")
    table = evaluate_full(dg, {"x": 5})
    assert table["x"]["out"] == 5
    assert table["p"]["out"] == 5
    assert table["o"]["out"] == 5


def test_all_opcodes_have_semantics() -> None:
    from repro.core.graph import OP_ROLES

    assert set(OP_ROLES) == set(OPCODE_SEMANTICS)
