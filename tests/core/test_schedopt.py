"""Tests for the memory-aware scheduler and high-water accounting."""

from __future__ import annotations

import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets, verify_schedule
from repro.core.schedopt import memory_highwater, schedule_gsets_memory_aware


@pytest.fixture(scope="module")
def plan12():
    gg = GGraph(tc_regular(12), group_by_columns)
    return make_linear_gsets(gg, 4)


def test_memory_aware_is_legal(plan12) -> None:
    order = schedule_gsets_memory_aware(plan12)
    verify_schedule(plan12, order)
    assert len(order) == len(plan12.gsets)


def test_memory_aware_beats_vertical(plan12) -> None:
    """The paper's vertical policy parks whole columns; greedy does not."""
    vertical = schedule_gsets(plan12, "vertical")
    optimized = schedule_gsets_memory_aware(plan12)
    assert memory_highwater(plan12, optimized) < memory_highwater(plan12, vertical)


def test_highwater_bounds(plan12) -> None:
    from repro.core.metrics import schedule_memory_traffic

    order = schedule_gsets(plan12, "vertical")
    hw = memory_highwater(plan12, order)
    total = schedule_memory_traffic(plan12, order)
    assert 0 < hw <= total


def test_highwater_order_sensitivity(plan12) -> None:
    """Different legal orders genuinely move the high-water mark."""
    marks = {
        policy: memory_highwater(plan12, schedule_gsets(plan12, policy))
        for policy in ("vertical", "horizontal", "wavefront")
    }
    assert len(set(marks.values())) > 1


def test_memory_aware_on_mesh() -> None:
    gg = GGraph(tc_regular(10), group_by_columns)
    plan = make_mesh_gsets(gg, 4)
    order = schedule_gsets_memory_aware(plan)
    verify_schedule(plan, order)


def test_single_set_plan_trivial() -> None:
    gg = GGraph(tc_regular(4), group_by_columns)
    plan = make_linear_gsets(gg, 100, aligned=False)
    # Few huge sets: nearly everything internal.
    order = schedule_gsets_memory_aware(plan)
    verify_schedule(plan, order)
    assert memory_highwater(plan, order) >= 0
