#!/usr/bin/env python
"""The Fig. 17 fixed-size array, head to head with Kung's array.

For problems that *do* fit the hardware, the intermediate G-graph gives a
fixed-size array directly: one cell per G-node, throughput 1/n, data
transfer overlapped with computation.  This example simulates it, checks
the initiation interval, streams its inputs through the Fig. 21 R-block
chain, and compares against the behavioural model of S.-Y. Kung's
load-then-reuse array (ref. [23]).

Run:  python examples/fixed_size_array.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.baselines.kung_fixed import run_kung_fixed
from repro.core.ggraph import GGraph, group_by_columns
from repro.arrays.cycle_sim import simulate
from repro.arrays.host import simulate_rblock_chain
from repro.arrays.plan import fixed_array_plan, min_initiation_interval


def main() -> None:
    n = 9
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    a = random_adjacency(n, density=0.3, seed=11)

    ep = fixed_array_plan(gg)
    res = simulate(ep, dg, make_inputs(a))
    assert res.ok
    assert np.array_equal(res.output_matrix(n), warshall(a))

    ii = min_initiation_interval(ep)
    kung = run_kung_fixed(a)
    assert np.array_equal(kung.result, warshall(a))

    print(f"Fixed-size transitive-closure array, n={n}")
    print(f"  cells:               {len(gg)} (= n x (n+1) G-nodes)")
    print(f"  first-result delay:  {res.makespan} cycles")
    print(f"  initiation interval: {ii} cycles  -> throughput 1/{ii}")
    print(f"  external memory:     {res.memory_words} words "
          "(single communication path, nothing parked)")
    print(f"  input side:          only the top row of cells "
          f"({len(res.input_cells)} cells) talks to the host")

    print(f"\nKung's array [23] on the same problem:")
    print(f"  cells:               {kung.cells}")
    print(f"  initiation interval: {int(1/kung.throughput)} cycles "
          f"({kung.overhead} cycles/instance are pure loading)")
    print(f"  control states:      {kung.control_states} (load/reuse switch)")
    print(f"  speed ratio:         ours is "
          f"{float(1 / kung.throughput) / ii:.1f}x faster at equal word rates")

    # Feed the array through the R-block chain at one word per cycle.
    chain = simulate_rblock_chain(res, host_rate=1)
    print(f"\nR-block host chain at 1 word/cycle: feasible={chain.feasible}, "
          f"preload={chain.preload_words} words, "
          f"max R-memory={chain.max_r_memory} words/column")
    print("\nOK: fixed-size array verified cycle by cycle.")


if __name__ == "__main__":
    main()
