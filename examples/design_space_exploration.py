#!/usr/bin/env python
"""Design-space exploration: pick an array for a given problem size.

A downstream user's question: "I must close 24-node graphs at a given
rate — how many cells, and linear or mesh?"  This example sweeps the
design space with the Sec. 4.1 measures and the fault-tolerance analysis,
reproducing the paper's Sec. 5 conclusion on the way: at equal cell
count the linear array matches the mesh's throughput, with simpler
memory structure and better fault behaviour.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import partition_transitive_closure
from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.arrays.faults import degraded_throughput
from repro.viz import format_table


def main() -> None:
    n = 24
    print(f"Design-space exploration for transitive closure, n={n}\n")

    rows = []
    for m, geometry in [
        (2, "linear"), (4, "linear"), (4, "mesh"),
        (6, "linear"), (8, "linear"), (9, "mesh"), (12, "linear"),
    ]:
        impl = partition_transitive_closure(n=n, m=m, geometry=geometry)
        r = impl.report
        rows.append(
            {
                "m": m,
                "geometry": geometry,
                "cycles/closure": r.total_time,
                "throughput": float(r.throughput),
                "utilization": float(r.utilization),
                "mem_ports": r.memory_connections,
                "D_IO(avg)": float(r.io_bandwidth),
                "boundary_sets": r.boundary_gsets,
            }
        )
    print(format_table(rows))

    # Throughput scales ~ linearly with m; cost scales with ports.
    print("\nThroughput per cell (how efficiently each added cell is used):")
    for r in rows:
        print(f"  m={r['m']:>2} {r['geometry']:>6}: "
              f"{r['throughput'] / r['m']:.2e} closures/cycle/cell")

    # Fault behaviour at the m=4 design point.
    gg = GGraph(tc_regular(n), group_by_columns)
    ft = degraded_throughput(gg, 4, failures=1)
    print("\nOne failed cell at m=4:")
    for geometry, rep in ft.items():
        print(f"  {geometry:>6}: {rep.cells_used}/{rep.m} cells usable, "
              f"throughput retained {float(rep.retention):.0%}")

    lin = next(r for r in rows if r["m"] == 4 and r["geometry"] == "linear")
    mesh = next(r for r in rows if r["m"] == 4 and r["geometry"] == "mesh")
    ratio = lin["throughput"] / mesh["throughput"]
    lin_ret = float(ft["linear"].retention)
    mesh_ret = float(ft["mesh"].retention)
    print(
        "\nConclusion (the paper's Sec. 5): at m=4 the two geometries are in "
        f"the same throughput class (linear/mesh ratio {ratio:.2f}; the "
        "difference is only boundary G-sets), but the linear array needs a "
        "single one-dimensional schedule with one control stream, and under "
        f"one cell failure it retains {lin_ret:.0%} of its throughput versus "
        f"the mesh's {mesh_ret:.0%} -> choose the linear array."
    )


if __name__ == "__main__":
    main()
