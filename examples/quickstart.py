#!/usr/bin/env python
"""Quickstart: partition transitive closure onto a small linear array.

This walks the paper's whole flow in a dozen lines: problem size ``n``,
array size ``m``, the three-step partitioning procedure, the Sec. 4
performance report, and a cycle-accurate run checked against plain
Warshall.

Run:  python examples/quickstart.py [n] [m]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import partition_transitive_closure
from repro.algorithms.warshall import random_adjacency, warshall


def main(n: int = 12, m: int = 4) -> None:
    print(f"Partitioning transitive closure: n={n} nodes, m={m} cells (linear)\n")

    impl = partition_transitive_closure(n=n, m=m, geometry="linear")

    print("G-graph:", impl.gg)
    print(f"G-sets: {impl.report.gsets} "
          f"({impl.report.boundary_gsets} ragged boundary sets)")
    print("Sec. 4 report:")
    for key, value in impl.report.row().items():
        print(f"  {key:>12}: {value}")

    # Execute on the simulated array and cross-check.
    a = random_adjacency(n, density=0.25, seed=7)
    result = impl.simulate(a)
    closure = result.output_matrix(n)
    reference = warshall(a)

    assert result.ok, f"timing violations: {result.violations[:3]}"
    assert np.array_equal(closure, reference)

    print(f"\nCycle simulation: makespan={result.makespan} cycles, "
          f"stalls={impl.exec_plan.stall_cycles}, "
          f"memory words={result.memory_words}")
    print(f"utilization={float(result.utilization):.3f} "
          f"(paper formula: {(n-1)*(n-2)/(n*(n+1)):.3f})")
    print("\nClosure matrix (1 = path exists):")
    for row in closure.astype(int):
        print("  " + " ".join(map(str, row)))
    print("\nOK: array result matches Warshall's algorithm.")


if __name__ == "__main__":
    args = [int(x) for x in sys.argv[1:3]]
    main(*args)
