#!/usr/bin/env python
"""Tuning the knobs the paper leaves implicit: memory vs host bandwidth.

The methodology fixes *what* runs where; two free choices remain and
they pull in opposite directions:

1. the G-set **issue order** — the paper's vertical-path policy
   minimizes host bandwidth but parks whole columns of intermediate
   values in external memory; a wavefront (or the greedy memory-aware
   scheduler) cuts the memory high-water ~3x at the cost of host rate;
2. the **partitioning blend** — pure coalescing stores everything in the
   cells, pure cut-and-pile stores everything outside; the hybrid scheme
   the paper conjectures interpolates.

This example sweeps both dials for one design point and prints the
frontier a system architect would actually choose from.

Run:  python examples/tune_memory_and_bandwidth.py
"""

from __future__ import annotations

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import SCHEDULE_POLICIES, make_linear_gsets, schedule_gsets
from repro.core.schedopt import memory_highwater, schedule_gsets_memory_aware
from repro.partitioning.coalescing import coalesce_by_strips
from repro.partitioning.hybrid import hybrid_partition
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan
from repro.viz import format_table


def main() -> None:
    n, m = 16, 4
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    env = make_inputs(random_adjacency(n, seed=0))

    print(f"Design point: n={n} transitive closure, m={m}-cell linear array\n")

    # ---- Dial 1: issue order --------------------------------------------
    plan = make_linear_gsets(gg, m)
    orders = {p: schedule_gsets(plan, p) for p in sorted(SCHEDULE_POLICIES)}
    orders["memory-aware"] = schedule_gsets_memory_aware(plan)
    rows = []
    for policy, order in orders.items():
        ep = partitioned_plan(plan, order)
        res = simulate(ep, dg, env)
        rows.append(
            {
                "issue order": policy,
                "host words/cycle": float(
                    res.required_host_bandwidth(preload=n * m)
                ),
                "ext. memory words": memory_highwater(plan, order),
                "makespan": res.makespan,
            }
        )
    print("Dial 1 — G-set issue order (same throughput, different budgets):")
    print(format_table(rows))

    # ---- Dial 2: where intermediate data lives --------------------------
    rows2 = []
    pure = coalesce_by_strips(gg, m)
    rows2.append(
        {"scheme": "coalescing (LSGP)", "cell storage": pure.max_local_storage,
         "external words": 0}
    )
    for piles in (2, 4):
        h = hybrid_partition(gg, m, piles)
        rows2.append(
            {"scheme": f"hybrid, {piles} piles",
             "cell storage": h.max_local_storage,
             "external words": h.external_words}
        )
    from repro.core.metrics import schedule_memory_traffic

    rows2.append(
        {"scheme": "cut-and-pile (LPGS)", "cell storage": 0,
         "external words": schedule_memory_traffic(plan, orders["vertical"])}
    )
    print("\nDial 2 — partitioning blend (the Sec. 2 conjecture as a dial):")
    print(format_table(rows2))

    print(
        "\nReading the frontier: a DRAM-rich board takes vertical order and\n"
        "pure cut-and-pile (the paper's design); a register-rich cell library\n"
        "coalesces; tight on both, pick wavefront order + a few piles.\n"
        "OK: all configurations verified against the oracle elsewhere."
    )


if __name__ == "__main__":
    main()
