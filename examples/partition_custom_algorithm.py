#!/usr/bin/env python
"""Apply the partitioning methodology to your own algorithm (LU here).

The paper's procedure is algorithm-agnostic: give it a transformed
dependence graph and a grouping, and it produces G-sets, a schedule and
the performance report.  This example walks LU decomposition through the
generic `partition()` API — including the Sec. 4.3 lesson that shows up
automatically: LU's G-nodes cannot all have one computation time, so the
linear mapping (uniform G-sets) beats the mesh (time-mixing G-sets).

Run:  python examples/partition_custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro import partition
from repro.algorithms.lu import lu_graph, lu_group_by_columns, lu_inputs
from repro.core.evaluate import evaluate
from repro.core.metrics import boundary_loss, time_mixing_loss
from repro.viz import render_ggraph_times


def main() -> None:
    n, m = 10, 4
    print(f"Partitioning LU decomposition: n={n}, m={m}\n")

    # Step 1 (front-end): the transformed dependence graph.  The LU
    # generator already pipelines the pivot/multiplier broadcasts.
    dg = lu_graph(n)
    dg.validate()
    print(f"dependence graph: {dg}")

    # Steps 2-3: group into G-nodes, select and schedule G-sets.
    lin = partition(dg, lu_group_by_columns, m=m, geometry="linear")
    mesh = partition(dg, lu_group_by_columns, m=m, geometry="mesh")

    print("\nG-node computation times (Fig. 22a — uniform per level,")
    print("decreasing across levels):")
    print(render_ggraph_times(lin.gg))

    print("\nLinear vs mesh mapping of the same G-graph:")
    for name, impl in (("linear", lin), ("mesh", mesh)):
        mix = float(time_mixing_loss(impl.plan, impl.order))
        bnd = float(boundary_loss(impl.plan, impl.order))
        print(f"  {name:>6}: {impl.report.total_time:>4} cycles, "
              f"occupancy={float(impl.report.occupancy):.3f} "
              f"(time-mixing loss {mix:.3f}, boundary loss {bnd:.3f})")

    assert float(time_mixing_loss(lin.plan, lin.order)) == 0.0

    # The G-graph still computes a correct factorization: evaluate the
    # graph functionally and reconstruct A = L @ U.
    rng = np.random.default_rng(0)
    a = rng.random((n, n)) + n * np.eye(n)
    outs = evaluate(dg, lu_inputs(a))
    lo, up = np.eye(n), np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i > j:
                lo[i, j] = outs[("L", i, j)]
            else:
                up[i, j] = outs[("U", i, j)]
    assert np.allclose(lo @ up, a)
    print("\nOK: the partitioned graph factorizes A = L @ U exactly;")
    print("the linear array wastes zero cycles to time mixing (Fig. 22b).")


if __name__ == "__main__":
    main()
