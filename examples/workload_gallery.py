#!/usr/bin/env python
"""Workload gallery: one array design, five graph families, verified.

Runs the synthetic workload suite (ring road, layered task DAG, grid
maze, tournament, call graph) through a single partitioned linear array
and prints what the closure reveals about each graph family — followed
by the randomized verification sweep that a downstream user would run
before trusting a design.

Run:  python examples/workload_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import partition_transitive_closure, verify_implementation
from repro.algorithms.warshall import warshall
from repro.algorithms.workloads import (
    call_graph,
    grid_maze,
    layered_dag,
    random_tournament,
    ring_with_chords,
)


def main() -> None:
    n, m = 12, 4
    impl = partition_transitive_closure(n=n, m=m)
    print(f"One design: n={n} transitive closure on a {m}-cell linear array\n")

    workloads = {
        "ring road + shortcuts": ring_with_chords(n, seed=5),
        "layered task DAG (4x3)": layered_dag(4, 3, density=0.6, seed=5),
        "grid maze (3x4)": grid_maze(3, 4, wall_prob=0.3, seed=5),
        "tournament": random_tournament(n, seed=5),
        "call graph": call_graph(n, seed=5),
    }

    print(f"{'workload':>24} | pairs reachable | strongly connected?")
    print("-" * 64)
    for name, a in workloads.items():
        closure = impl.run(a)
        assert np.array_equal(closure, warshall(a))
        pairs = int(closure.sum()) - n  # exclude the reflexive diagonal
        scc = bool(closure.all())
        print(f"{name:>24} | {pairs:>11} / {n * (n - 1):<3} | {scc}")

    # The pre-flight check a user runs before trusting the design.
    report = verify_implementation(
        impl, trials=8, seed=9, extra_inputs=list(workloads.values())
    )
    print(f"\nverification sweep: {report.summary()}")
    assert report.ok
    print("OK: every workload's closure matches the software oracle.")


if __name__ == "__main__":
    main()
