#!/usr/bin/env python
"""Reachability and shortest paths on a synthetic road network.

The motivating workload of 1988-era transitive-closure arrays: given a
directed road network (one-way streets!), which intersections can reach
which?  We build a random planar-ish network with networkx, compute its
transitive closure on the simulated partitioned linear array, and then —
the semiring extension — reuse the *same* array design to compute
all-pairs shortest travel times (Floyd-Warshall over min-plus).

Run:  python examples/road_network_reachability.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import MIN_PLUS, partition_transitive_closure
from repro.algorithms.warshall import (
    floyd_warshall_reference,
    transitive_closure_networkx,
)


def build_road_network(n: int, seed: int = 3) -> nx.DiGraph:
    """A sparse directed network: a ring road plus random one-way links."""
    rng = np.random.default_rng(seed)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for i in range(n):  # ring road (one-way)
        g.add_edge(i, (i + 1) % n, minutes=int(rng.integers(2, 8)))
    for _ in range(n):  # random shortcuts
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), minutes=int(rng.integers(1, 15)))
    # Sever the ring once to make reachability non-trivial.
    g.remove_edge(n - 1, 0)
    return g


def main() -> None:
    n, m = 14, 4
    g = build_road_network(n)
    print(f"Road network: {n} intersections, {g.number_of_edges()} one-way roads")

    a = np.zeros((n, n), dtype=bool)
    for u, v in g.edges:
        a[u, v] = True
    np.fill_diagonal(a, True)

    # --- Reachability on the partitioned linear array -------------------
    impl = partition_transitive_closure(n=n, m=m, geometry="linear")
    closure = impl.run(a)
    assert np.array_equal(closure, transitive_closure_networkx(a))

    reach_counts = closure.sum(axis=1)
    best = int(np.argmax(reach_counts))
    worst = int(np.argmin(reach_counts))
    print(f"\nReachability (computed on the {m}-cell array):")
    print(f"  intersection {best} reaches {reach_counts[best]} of {n}")
    print(f"  intersection {worst} reaches only {reach_counts[worst]}")
    unreachable = np.argwhere(~closure)
    print(f"  unreachable pairs: {len(unreachable)}")

    # --- Shortest travel times: same array, min-plus semiring -----------
    w = np.full((n, n), np.inf)
    for u, v, d in g.edges(data=True):
        w[u, v] = d["minutes"]
    np.fill_diagonal(w, 0.0)

    impl_sp = partition_transitive_closure(n=n, m=m, semiring=MIN_PLUS)
    times = impl_sp.run(w)
    assert np.array_equal(times, floyd_warshall_reference(w))

    finite = times[np.isfinite(times) & (times > 0)]
    print(f"\nShortest travel times (same array, min-plus semiring):")
    print(f"  longest shortest route: {finite.max():.0f} minutes")
    print(f"  mean shortest route:    {finite.mean():.1f} minutes")
    src = 0
    reachable_times = [
        (int(j), int(times[src, j]))
        for j in range(n)
        if j != src and np.isfinite(times[src, j])
    ]
    print(f"  from intersection {src}: "
          + ", ".join(f"{j}({t}m)" for j, t in reachable_times[:8]) + " ...")
    print("\nOK: both results match the software references.")


if __name__ == "__main__":
    main()
